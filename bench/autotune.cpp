// Flow autotuning over the script grammar (the final ROADMAP item): search
// for the best flow under an objective, with the paper-default
// "(TF;BFD;size)*" as the baseline to beat.
//
// Self-checked criteria (the binary exits nonzero when any fails):
//
//   * the search finds a script whose objective value *strictly* beats the
//     paper-default flow::kBaselineScript on the same corpus;
//   * the winning script survives the to_script() round trip
//     (parse(script).to_script() == script) — reports are reproducible;
//   * re-running the re-parsed winner reproduces the tuned result
//     bit-identically: same summed size/depth as the report, and two
//     independent reruns emit byte-identical BLIF.
//
// Flags: --corpus DIR (default: built-in generator corpus), --objective
// size|depth|product (default size), --population N (default 12),
// --generations N (default 2), --seed N (default 1), --threads n,
// --json FILE (BENCH_autotune.json for the tools/check_bench.py gate).

#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "flow/flow.hpp"
#include "io/io.hpp"

using namespace mighty;

namespace {

std::string corpus_blifs(const std::vector<mig::Mig>& networks) {
  std::ostringstream os;
  for (const auto& network : networks) io::write_blif(os, network);
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string corpus_dir = bench::string_flag(argc, argv, "--corpus");
  const std::string objective_arg =
      bench::string_flag(argc, argv, "--objective", "size");
  const int population = bench::int_flag(argc, argv, "--population", 12);
  const int generations = bench::int_flag(argc, argv, "--generations", 2);
  const int seed = bench::int_flag(argc, argv, "--seed", 1);
  const int threads = bench::int_flag(argc, argv, "--threads", 1);
  const std::string json_path = bench::string_flag(argc, argv, "--json");

  flow::TuneParams params;
  params.objective = flow::parse_objective(objective_arg);
  params.population = static_cast<uint32_t>(population > 0 ? population : 1);
  params.generations = static_cast<uint32_t>(generations >= 0 ? generations : 0);
  params.seed = static_cast<uint32_t>(seed >= 0 ? seed : 1);

  printf("Autotuning the %s objective, population %u, %u generation%s, "
         "%d thread%s\n",
         flow::objective_name(params.objective), params.population,
         params.generations, params.generations == 1 ? "" : "s", threads,
         threads == 1 ? "" : "s");

  const auto corpus = corpus_dir.empty() ? flow::Corpus::generated_arithmetic()
                                         : flow::Corpus::from_directory(corpus_dir);
  printf("corpus: %zu networks (%s)\n\n", corpus.size(),
         corpus_dir.empty() ? "built-in generators" : corpus_dir.c_str());

  flow::Session session;
  session.set_threads(static_cast<uint32_t>(threads > 0 ? threads : 1));
  session.database();  // load once, outside the timed search

  flow::TuneReport report;
  auto best_pipeline = flow::Autotuner(session, params).tune(corpus, &report);
  fputs(report.summary().c_str(), stdout);

  const flow::TuneEntry& best = report.best();

  // --- criterion 1: strictly beats the paper default -------------------------
  const bool beats_baseline = best.objective < report.baseline.objective;
  if (!beats_baseline) {
    fprintf(stderr,
            "search did not beat the baseline: best %llu vs %s = %llu\n",
            static_cast<unsigned long long>(best.objective), flow::kBaselineScript,
            static_cast<unsigned long long>(report.baseline.objective));
  }

  // --- criterion 2: the winning script round-trips ---------------------------
  const std::string reparsed = flow::Pipeline::parse(best.script).to_script();
  const bool round_trips = reparsed == best.script;
  if (!round_trips) {
    fprintf(stderr, "to_script round trip changed the winner: \"%s\" -> \"%s\"\n",
            best.script.c_str(), reparsed.c_str());
  }

  // --- criterion 3: the re-parsed winner reproduces the result ---------------
  flow::BatchReport first, second;
  const auto first_out =
      flow::BatchRunner(session).run(corpus, best_pipeline, &first);
  const auto second_out = flow::BatchRunner(session).run(
      corpus, flow::Pipeline::parse(best.script), &second);
  const bool reproduces = first.size_after == best.size &&
                          first.depth_after == best.depth &&
                          corpus_blifs(first_out) == corpus_blifs(second_out);
  if (!reproduces) {
    fprintf(stderr,
            "winner did not reproduce: report %u gates/%llu depth, rerun %u "
            "gates/%llu depth, BLIF %s\n",
            best.size, static_cast<unsigned long long>(best.depth),
            first.size_after, static_cast<unsigned long long>(first.depth_after),
            corpus_blifs(first_out) == corpus_blifs(second_out) ? "identical"
                                                                : "DIVERGES");
  }

  const double improvement =
      report.baseline.objective == 0
          ? 0.0
          : 1.0 - static_cast<double>(best.objective) /
                      static_cast<double>(report.baseline.objective);
  printf("\nbest vs baseline: %llu vs %llu (%.2f%% better), pareto front: %zu "
         "scripts\n",
         static_cast<unsigned long long>(best.objective),
         static_cast<unsigned long long>(report.baseline.objective),
         100.0 * improvement, report.pareto_front().size());

  if (!json_path.empty()) {
    std::vector<bench::BenchRecord> records;
    bench::BenchRecord record;
    record.name = "autotune_" + std::string(flow::objective_name(params.objective));
    record.baseline = {
        {"networks", static_cast<double>(corpus.size())},
        {"objective", static_cast<double>(report.baseline.objective)},
        {"size", static_cast<double>(report.baseline.size)},
        {"depth", static_cast<double>(report.baseline.depth)}};
    record.variants.emplace_back(
        "tuned", std::vector<std::pair<std::string, double>>{
                     {"objective", static_cast<double>(best.objective)},
                     {"size", static_cast<double>(best.size)},
                     {"depth", static_cast<double>(best.depth)},
                     {"improvement_rate", improvement},
                     {"seconds", report.seconds}});
    records.push_back(std::move(record));
    if (bench::write_bench_json(json_path, "autotune",
                                corpus_dir.empty() ? "generated" : "directory",
                                threads, records)) {
      printf("machine-readable results: %s\n", json_path.c_str());
    } else {
      fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
  }
  return beats_baseline && round_trips && reproduces ? 0 : 1;
}
