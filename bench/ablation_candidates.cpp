// Ablation A: the bottom-up algorithm stores only "a predetermined number of
// best candidates, similar to priority cuts" (paper Sec. IV-B).  This bench
// sweeps that bound and the combination cap to expose the quality/run-time
// trade-off the paper alludes to.

#include "bench_util.hpp"
#include "opt/rewrite.hpp"
#include "suite_common.hpp"

using namespace mighty;

int main(int argc, char** argv) {
  const bool full = bench::has_flag(argc, argv, "--full");
  printf("Ablation: bottom-up candidate-list bound (variant BF)\n\n");

  const auto db = exact::Database::load_or_build(exact::default_database_path());
  const auto baseline = algebra::depth_optimize(
      full ? gen::make_multiplier_n(64) : gen::make_multiplier_n(16));
  printf("input: multiplier, %u gates, depth %u\n\n", baseline.count_live_gates(),
         baseline.depth());

  printf("%10s %12s | %8s %6s %8s\n", "candidates", "combinations", "size", "depth",
         "time[s]");
  bench::print_rule(52);
  for (const uint32_t candidates : {1u, 2u, 4u, 8u}) {
    for (const uint32_t combos : {4u, 16u, 64u}) {
      auto params = opt::variant_params("BF");
      params.max_candidates = candidates;
      params.max_combinations = combos;
      opt::RewriteStats stats;
      opt::functional_hashing(baseline, db, params, &stats);
      printf("%10u %12u | %8u %6u %8.2f\n", candidates, combos, stats.size_after,
             stats.depth_after, stats.seconds);
      fflush(stdout);
    }
  }
  printf("\nexpected shape: more candidates/combinations buy small size gains at\n"
         "superlinear run-time cost, which is why the paper bounds the list.\n");
  return 0;
}
