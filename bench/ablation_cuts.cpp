// Ablation B: cut enumeration statistics.  The paper states exhaustive cut
// enumeration is feasible for k <= 6 and uses k = 4 (Sec. II-C).  This bench
// reports cut counts and enumeration time for k = 2..6, with and without a
// per-node cut cap, plus the effect of fanout-free-region boundaries.

#include "bench_util.hpp"
#include "mig/cuts.hpp"
#include "mig/ffr.hpp"
#include "suite_common.hpp"

using namespace mighty;

int main(int argc, char** argv) {
  const bool full = bench::has_flag(argc, argv, "--full");
  printf("Ablation: k-feasible cut enumeration\n\n");

  const auto m = full ? gen::make_multiplier_n(64) : gen::make_multiplier_n(24);
  printf("input: multiplier, %u gates\n\n", m.count_live_gates());

  printf("%3s %9s | %12s %10s %8s\n", "k", "cap", "total cuts", "cuts/gate",
         "time[s]");
  bench::print_rule(50);
  for (const uint32_t k : {2u, 3u, 4u, 5u, 6u}) {
    for (const uint32_t cap : {0u, 8u}) {
      cuts::CutEnumerationParams params;
      params.cut_size = k;
      params.max_cuts = cap;
      bench::Stopwatch sw;
      const auto sets = cuts::enumerate_cuts(m, params);
      const double secs = sw.seconds();
      const uint64_t total = cuts::total_cut_count(sets);
      printf("%3u %9s | %12lu %10.1f %8.2f\n", k, cap == 0 ? "exhaust." : "8",
             static_cast<unsigned long>(total),
             static_cast<double>(total) / m.count_live_gates(), secs);
      fflush(stdout);
    }
  }

  printf("\nwith fanout-free-region boundaries (k = 4, exhaustive):\n");
  const auto partition = ffr::compute_ffrs(m);
  const auto boundary = ffr::ffr_boundary(partition);
  cuts::CutEnumerationParams params;
  params.boundary = &boundary;
  bench::Stopwatch sw;
  const auto sets = cuts::enumerate_cuts(m, params);
  printf("  %lu cuts in %.2fs across %zu regions (vs. global above)\n",
         static_cast<unsigned long>(cuts::total_cut_count(sets)), sw.seconds(),
         partition.roots.size());
  return 0;
}
