// Reproduces Table IV of the paper: area (6-LUT count) and depth (LUT levels)
// after technology mapping of the functional-hashing results.  The paper maps
// with ABC; here the priority-cuts 6-LUT mapper of src/map is used (the same
// algorithm family, the paper's ref. [11]).
//
// Each column is the flow "<variant>; map" run in one shared flow::Session;
// the mapping numbers come straight out of the FlowReport.
//
// Expected shape: mapping the rewritten MIGs beats mapping the baseline in
// most instances, and the best result is spread across different variants
// (the paper improved 7 of 8 best known results, one also in depth).
//
// Flags: --small / --full as in table3, --threads n (parallel session;
// results are bit-identical to --threads 1), --json FILE (machine-readable
// BENCH_*.json for the tools/check_bench.py gate).

#include "bench_util.hpp"
#include "flow/flow.hpp"
#include "suite_common.hpp"

using namespace mighty;

int main(int argc, char** argv) {
  const bool small = bench::has_flag(argc, argv, "--small");
  const int threads = bench::int_flag(argc, argv, "--threads", 1);
  const std::string json_path = bench::string_flag(argc, argv, "--json");
  const std::vector<std::string> variants{"TF", "T", "TFD", "TD", "BF"};

  printf("Table IV: area and depth after 6-LUT technology mapping\n");
  printf("mode: %s, %d thread%s\n\n",
         small ? "--small (reduced widths)" : "full (paper I/O sizes)", threads,
         threads == 1 ? "" : "s");

  flow::Session session;
  session.set_threads(static_cast<uint32_t>(threads > 0 ? threads : 1));
  session.database();  // load (or build) outside the timed region
  auto suite = bench::prepare_suite(small);
  std::vector<bench::BenchRecord> records;

  printf("%-12s | %9s %4s |", "Benchmark", "base A", "D");
  for (const auto& v : variants) printf(" %6s A %4s |", v.c_str(), "D");
  printf("\n");
  bench::print_rule(30 + 17 * static_cast<int>(variants.size()));

  const auto baseline_map = flow::Pipeline().lut_map();

  std::vector<double> area_ratio_sum(variants.size(), 0.0);
  std::vector<double> depth_ratio_sum(variants.size(), 0.0);
  int improved_instances = 0;
  int rows = 0;

  for (const auto& benchmark : suite) {
    flow::FlowReport base_report;
    baseline_map.run(benchmark.baseline, session, &base_report);
    const auto* base_map = base_report.last_mapping();
    printf("%-12s | %9u %4u |", benchmark.name.c_str(), base_map->num_luts,
           base_map->lut_depth);
    bench::BenchRecord record;
    record.name = benchmark.name;
    record.baseline = {{"luts", static_cast<double>(base_map->num_luts)},
                       {"lut_depth", static_cast<double>(base_map->lut_depth)}};
    bool any_better = false;
    for (size_t vi = 0; vi < variants.size(); ++vi) {
      flow::FlowReport report;
      flow::Pipeline::parse(variants[vi] + "; map")
          .run(benchmark.baseline, session, &report);
      const auto* mapped = report.last_mapping();
      printf(" %8u %4u |", mapped->num_luts, mapped->lut_depth);
      record.variants.emplace_back(
          variants[vi],
          std::vector<std::pair<std::string, double>>{
              {"luts", static_cast<double>(mapped->num_luts)},
              {"lut_depth", static_cast<double>(mapped->lut_depth)},
              {"seconds", report.seconds}});
      area_ratio_sum[vi] += static_cast<double>(mapped->num_luts) / base_map->num_luts;
      depth_ratio_sum[vi] +=
          static_cast<double>(mapped->lut_depth) / base_map->lut_depth;
      if (mapped->num_luts < base_map->num_luts ||
          (mapped->num_luts == base_map->num_luts &&
           mapped->lut_depth < base_map->lut_depth)) {
        any_better = true;
      }
      fflush(stdout);
    }
    if (any_better) ++improved_instances;
    printf("\n");
    records.push_back(std::move(record));
    ++rows;
  }

  bench::print_rule(30 + 17 * static_cast<int>(variants.size()));
  printf("%-12s | %14s |", "Avg (new/old)", "");
  for (size_t vi = 0; vi < variants.size(); ++vi) {
    printf(" %8.2f %4.2f |", area_ratio_sum[vi] / rows, depth_ratio_sum[vi] / rows);
  }
  printf("\n\nsome variant improves the mapping on %d of %d instances "
         "(paper: 7 of 8)\n", improved_instances, rows);
  printf("(paper avg ratios: TF 0.97/1.01, T 1.02/1.00, TFD 0.96/1.00, "
         "TD 0.99/1.00, BF 0.99/1.01)\n");
  if (!json_path.empty()) {
    if (bench::write_bench_json(json_path, "table4_mapping",
                                small ? "small" : "full", threads, records)) {
      printf("machine-readable results: %s\n", json_path.c_str());
    } else {
      fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
  }
  return 0;
}
