// Ablation E: 5-input cuts.  The paper notes that enumerating all NPN classes
// of 5-variable functions is impractical and points to rewriting with a
// dynamically discovered subset (Sec. IV, ref. [9]).  This bench compares
// 4-input rewriting against the 5-input extension (on-demand bounded exact
// synthesis with caching) on the arithmetic suite.

#include "bench_util.hpp"
#include "opt/rewrite.hpp"
#include "suite_common.hpp"

using namespace mighty;

int main(int argc, char** argv) {
  const bool full = bench::has_flag(argc, argv, "--full");
  printf("Ablation: 4-input vs 5-input cut rewriting (variant TF)\n");
  printf("mode: %s\n\n", full ? "full" : "reduced widths (--full for paper sizes)");

  const auto db = exact::Database::load_or_build(exact::default_database_path());
  auto suite = bench::prepare_suite(!full);

  printf("%-12s | %8s | %8s %6s %7s | %8s %6s %7s\n", "Benchmark", "base",
         "k=4 S", "D", "RT", "k=5 S", "D", "RT");
  bench::print_rule(76);
  double ratio4 = 0.0, ratio5 = 0.0;
  for (const auto& benchmark : suite) {
    const uint32_t s0 = benchmark.baseline.count_live_gates();
    printf("%-12s | %8u |", benchmark.name.c_str(), s0);

    opt::RewriteStats four;
    opt::functional_hashing(benchmark.baseline, db, opt::variant_params("TF"), &four);
    printf(" %8u %6u %6.2fs |", four.size_after, four.depth_after, four.seconds);
    fflush(stdout);

    auto params = opt::variant_params("TF");
    params.five_input_cuts = true;
    opt::RewriteStats five;
    opt::functional_hashing(benchmark.baseline, db, params, &five);
    printf(" %8u %6u %6.2fs\n", five.size_after, five.depth_after, five.seconds);
    ratio4 += static_cast<double>(four.size_after) / s0;
    ratio5 += static_cast<double>(five.size_after) / s0;
    fflush(stdout);
  }
  bench::print_rule(76);
  printf("avg size ratio: k=4 %.3f, k=5 %.3f\n\n", ratio4 / suite.size(),
         ratio5 / suite.size());
  printf("expected shape: k=5 finds additional reductions, paid for by the\n"
         "on-demand synthesis time on first-seen cut functions.\n");
  return 0;
}
