# Defines the `corpus` target: exports the built-in generator corpus
# (flow::Corpus::generated_arithmetic) as BLIF files into
# ${CMAKE_BINARY_DIR}/data/corpus/, one file per network, at build time.
#
# The corpus is a pure function of src/gen + src/io, so it is regenerated
# whenever the exporter relinks; nothing binary is ever committed.  Consumers:
#
#   * tests: batch_flow_test reads it through the MIGHTY_CORPUS_DIR
#     environment variable set on the ctest entries (see the test section);
#   * bench/corpus_flow --corpus ${MIGHTY_CORPUS_DIR} (defaults to the
#     generated corpus when the flag is absent, so it also runs standalone).
#
# Include after the `mighty` library and tool targets are defined.

set(MIGHTY_CORPUS_DIR ${CMAKE_BINARY_DIR}/data/corpus)

add_executable(export_corpus ${CMAKE_CURRENT_SOURCE_DIR}/tools/export_corpus.cpp)
target_link_libraries(export_corpus PRIVATE mighty)

# The stamp keeps the custom command out of the "always rebuild" class: it
# reruns only when the exporter itself (and thus the generators) changed.
# It lives inside the corpus directory, so deleting the directory also
# invalidates the stamp and the next build re-exports.
add_custom_command(
  OUTPUT ${MIGHTY_CORPUS_DIR}/.stamp
  COMMAND export_corpus ${MIGHTY_CORPUS_DIR}
  COMMAND ${CMAKE_COMMAND} -E touch ${MIGHTY_CORPUS_DIR}/.stamp
  DEPENDS export_corpus
  COMMENT "Exporting generator corpus to ${MIGHTY_CORPUS_DIR}"
  VERBATIM)

add_custom_target(corpus ALL DEPENDS ${MIGHTY_CORPUS_DIR}/.stamp)
