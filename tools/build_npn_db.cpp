// Builds (or verifies) the on-disk NPN-4 database of minimum MIGs and prints
// where it lives.  Used as the ctest fixture that the database-dependent
// tests share, and handy for warming the cache before benchmarking:
//
//   $ MIGHTY_DB_PATH=build/data/mig_npn4.db ./build/build_npn_db

#include <cstdio>

#include "exact/database.hpp"

int main() {
  using namespace mighty;
  const std::string path = exact::default_database_path();
  const auto db = exact::Database::load_or_build(path);
  printf("NPN-4 database: %zu classes at %s\n", db.num_entries(), path.c_str());
  return db.num_entries() == 222 ? 0 : 1;
}
