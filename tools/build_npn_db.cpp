// Builds (or verifies) the on-disk NPN-4 database of minimum MIGs and prints
// where it lives.  Used as the ctest fixture that the database-dependent
// tests share, and handy for warming the cache before benchmarking:
//
//   $ MIGHTY_DB_PATH=build/data/mig_npn4.db ./build/build_npn_db
//
// With --cache <path> it additionally validates a persistent 5-input oracle
// cache file (the `mighty-mig-5cut-cache v1` format): loads it through the
// same wholesale validation every session uses and prints its stats.  A
// missing file is fine (it appears on first save); a malformed one fails the
// run — useful for checking a CI-restored cache before benches rely on it.
//
// With --lint the deep artifact linters (check/check.hpp) run on top: the
// database entries are re-checked for canonical-form keys, realizing chains
// and the Theorem-2 size bound, and a --cache file gets per-line diagnostics
// (canonical chain serialization, budget monotonicity, sorted keys) instead
// of the loader's wholesale accept/reject.  Lint warnings are printed but
// only errors fail the run.

#include <cstdio>
#include <cstring>

#include "check/check.hpp"
#include "exact/database.hpp"
#include "opt/oracle.hpp"

int main(int argc, char** argv) {
  using namespace mighty;
  bool lint = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--lint") == 0) lint = true;
  }

  const std::string path = exact::default_database_path();
  const auto db = exact::Database::load_or_build(path);
  printf("NPN-4 database: %zu classes at %s\n", db.num_entries(), path.c_str());
  bool ok = db.num_entries() == 222;

  if (lint) {
    const auto report = check::lint_database(db);
    fputs(report.summary().c_str(), stdout);
    ok = ok && report.ok();
  }

  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--cache") != 0) continue;
    const char* cache_path = argv[i + 1];
    opt::OracleParams params;
    params.enable_five_input = true;
    opt::ReplacementOracle oracle(db, params);
    const auto result = oracle.load_cache(cache_path);
    using Status = opt::ReplacementOracle::CacheLoadStatus;
    if (result.status == Status::missing) {
      printf("5-cut cache: no file at %s yet (created on first save)\n", cache_path);
    } else if (result.status == Status::malformed) {
      fprintf(stderr, "5-cut cache: %s is malformed\n", cache_path);
      ok = false;
    } else {
      const auto stats = oracle.cache_stats();
      printf("5-cut cache: %zu entries at %s (%zu replacements, %zu failures)\n",
             stats.entries, cache_path, stats.successes, stats.failures);
    }
    // A missing cache is normal (it appears on first save): nothing to lint.
    if (lint && result.status != Status::missing) {
      const auto report = check::lint_cache_file(cache_path);
      fputs(report.summary().c_str(), stdout);
      ok = ok && report.ok();
    }
  }
  return ok ? 0 : 1;
}
