// Builds (or verifies) the on-disk NPN-4 database of minimum MIGs and prints
// where it lives.  Used as the ctest fixture that the database-dependent
// tests share, and handy for warming the cache before benchmarking:
//
//   $ MIGHTY_DB_PATH=build/data/mig_npn4.db ./build/build_npn_db
//
// With --cache <path> it additionally validates a persistent 5-input oracle
// cache file (the `mighty-mig-5cut-cache v1` format): loads it through the
// same wholesale validation every session uses and prints its stats.  A
// missing file is fine (it appears on first save); a malformed one fails the
// run — useful for checking a CI-restored cache before benches rely on it.

#include <cstdio>
#include <cstring>

#include "exact/database.hpp"
#include "opt/oracle.hpp"

int main(int argc, char** argv) {
  using namespace mighty;
  const std::string path = exact::default_database_path();
  const auto db = exact::Database::load_or_build(path);
  printf("NPN-4 database: %zu classes at %s\n", db.num_entries(), path.c_str());
  bool ok = db.num_entries() == 222;

  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--cache") != 0) continue;
    const char* cache_path = argv[i + 1];
    opt::OracleParams params;
    params.enable_five_input = true;
    opt::ReplacementOracle oracle(db, params);
    const auto result = oracle.load_cache(cache_path);
    using Status = opt::ReplacementOracle::CacheLoadStatus;
    if (result.status == Status::missing) {
      printf("5-cut cache: no file at %s yet (created on first save)\n", cache_path);
    } else if (result.status == Status::malformed) {
      fprintf(stderr, "5-cut cache: %s is malformed\n", cache_path);
      ok = false;
    } else {
      const auto stats = oracle.cache_stats();
      printf("5-cut cache: %zu entries at %s (%zu replacements, %zu failures)\n",
             stats.entries, cache_path, stats.successes, stats.failures);
    }
  }
  return ok ? 0 : 1;
}
