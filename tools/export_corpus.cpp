// Exports the built-in generator corpus (flow::Corpus::generated_arithmetic)
// as BLIF files, one per network, into the directory given as argv[1].
//
// Driven by tools/make_corpus.cmake: the `corpus` build target writes
// ${CMAKE_BINARY_DIR}/data/corpus/*.blif so the batch tests and
// bench/corpus_flow have a reproducible on-disk corpus without committing
// binaries.  The files round-trip through io::read_blif, so a corpus loaded
// from this directory is functionally identical to the generated one.

#include <cstdio>
#include <filesystem>

#include "flow/corpus.hpp"
#include "io/io.hpp"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <output-directory>\n", argv[0]);
    return 2;
  }
  const std::filesystem::path directory = argv[1];
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create %s: %s\n", directory.c_str(),
                 ec.message().c_str());
    return 1;
  }
  // Clear stale exports: a renamed or removed generator must not leave its
  // old network behind, or directory loads diverge from the generated corpus.
  for (const auto& entry : std::filesystem::directory_iterator(directory)) {
    if (entry.is_regular_file() && entry.path().extension() == ".blif") {
      std::filesystem::remove(entry.path());
    }
  }
  const auto corpus = mighty::flow::Corpus::generated_arithmetic();
  for (const auto& entry : corpus) {
    const auto path = directory / (entry.name + ".blif");
    mighty::io::write_blif_file(path.string(), entry.mig, entry.name);
    std::printf("%-14s %5u gates, depth %3u -> %s\n", entry.name.c_str(),
                entry.mig.count_live_gates(), entry.mig.depth(),
                path.c_str());
  }
  return 0;
}
