#pragma once

#include <memory>
#include <string>
#include <vector>

#include "lexer.hpp"

/// \file check.hpp
/// \brief The check registry contract: one class per enforced invariant.
///
/// A check sees the project twice.  `scan_all` runs once over every file in
/// the invocation so cross-file facts (enum definitions, which identifiers
/// are declared with unordered containers) exist before any file is judged;
/// `run` then visits each file and reports through the Sink, which owns
/// suppression matching and output formatting (diagnostics.hpp).  Checks are
/// listed in docs/linting.md; adding one means adding a file under checks/,
/// registering it in checks.cpp, and shipping a fail_/pass_ fixture pair
/// under tests/lint_fixtures/.

namespace mighty::lint {

struct FileUnit {
  std::string fs_path;  ///< on-disk path (what we read and what errors open)
  std::string vpath;    ///< project-relative path used for scoping ('/'-separated)
  std::string content;
  std::vector<Token> tokens;                 ///< code tokens (no comments)
  std::vector<Token> comments;               ///< comment tokens
  std::vector<std::string> quoted_includes;  ///< #include "..." targets
};

class Sink {
public:
  virtual ~Sink() = default;
  virtual void report(const FileUnit& unit, int line, int col,
                      const std::string& check, const std::string& message) = 0;
};

class Check {
public:
  virtual ~Check() = default;
  virtual std::string name() const = 0;
  virtual std::string description() const = 0;
  /// Pass 1: observe the whole file set (default: nothing to collect).
  virtual void scan_all(const std::vector<FileUnit>& units) { (void)units; }
  /// Pass 2: judge one file.
  virtual void run(const FileUnit& unit, Sink& sink) const = 0;
};

/// All registered checks, in stable (documented) order.
std::vector<std::unique_ptr<Check>> make_all_checks();

/// True when `vpath` lives under `prefix` ("src/", "bench/", ...).
inline bool vpath_in(const std::string& vpath, const std::string& prefix) {
  return vpath.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace mighty::lint
