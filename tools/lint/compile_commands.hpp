#pragma once

#include <string>
#include <vector>

/// \file compile_commands.hpp
/// \brief Translation-unit discovery from a CMake compilation database.
///
/// The top-level CMakeLists exports compile_commands.json on every configure
/// (CMAKE_EXPORT_COMPILE_COMMANDS ON), so mighty-lint, clang-tidy and
/// editors all share one database.  The portable engine only needs the
/// "file" entries (the AST engine additionally hands the database to
/// LibTooling for flags); this is a purpose-built extractor, not a JSON
/// library — it understands exactly the array-of-objects shape CMake emits.

namespace mighty::lint {

/// Returns the "file" values of `<build_dir>/compile_commands.json`.
/// Throws std::runtime_error when the file is missing or unreadable.
std::vector<std::string> compile_commands_files(const std::string& build_dir);

}  // namespace mighty::lint
