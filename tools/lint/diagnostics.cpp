#include "diagnostics.hpp"

#include <algorithm>
#include <cstdio>

namespace mighty::lint {

namespace {

constexpr const char* kMarker = "mighty-lint:";

std::string trim(const std::string& s) {
  const auto first = s.find_first_not_of(" \t");
  if (first == std::string::npos) return std::string();
  const auto last = s.find_last_not_of(" \t");
  return s.substr(first, last - first + 1);
}

}  // namespace

void DiagnosticEngine::register_file(const FileUnit& unit) {
  // Lines that carry code, so a standalone allow-comment can find the line
  // it governs (the next code line below it).
  std::set<int> code_lines;
  for (const Token& t : unit.tokens) code_lines.insert(t.line);

  FileSuppressions& file = suppressions_[unit.vpath];
  for (const Token& comment : unit.comments) {
    const std::string text = trim(comment.text);
    if (text.compare(0, std::char_traits<char>::length(kMarker), kMarker) != 0) {
      continue;
    }
    auto bad = [&](const std::string& why) {
      diagnostics_.push_back({unit.vpath, comment.line, comment.col, "allow",
                              why + " — expected `mighty-lint: allow(<check>): <reason>`"});
    };
    std::string rest = trim(text.substr(std::char_traits<char>::length(kMarker)));
    if (rest.compare(0, 6, "allow(") != 0) {
      bad("malformed mighty-lint comment");
      continue;
    }
    const auto close = rest.find(')');
    if (close == std::string::npos) {
      bad("unterminated allow(...)");
      continue;
    }
    Allow allow;
    allow.check = trim(rest.substr(6, close - 6));
    if (allow.check == "allow" || known_checks_.count(allow.check) == 0) {
      bad("unknown check '" + allow.check + "' in allow(...)");
      continue;
    }
    std::string tail = trim(rest.substr(close + 1));
    if (tail.empty() || tail[0] != ':' || trim(tail.substr(1)).empty()) {
      bad("suppression of '" + allow.check + "' requires a reason");
      continue;
    }
    allow.reason = trim(tail.substr(1));
    allow.comment_line = comment.line;
    if (code_lines.count(comment.line) != 0) {
      allow.target_line = comment.line;  // trailing comment
    } else {
      const auto next = code_lines.upper_bound(comment.line);
      allow.target_line = next == code_lines.end() ? -1 : *next;
    }
    file.allows.push_back(allow);
  }
}

void DiagnosticEngine::report(const FileUnit& unit, int line, int col,
                              const std::string& check, const std::string& message) {
  auto it = suppressions_.find(unit.vpath);
  if (it != suppressions_.end()) {
    for (Allow& allow : it->second.allows) {
      if (allow.check == check && allow.target_line == line) {
        allow.used = true;
        ++suppressed_;
        return;
      }
    }
  }
  diagnostics_.push_back({unit.vpath, line, col, check, message});
}

void DiagnosticEngine::flag_unused_allows() {
  for (const auto& [vpath, file] : suppressions_) {
    for (const Allow& allow : file.allows) {
      if (allow.used) continue;
      diagnostics_.push_back(
          {vpath, allow.comment_line, 1, "allow",
           "stale suppression: allow(" + allow.check +
               ") matched no diagnostic — remove it (or fix the drifted code "
               "it used to cover)"});
    }
  }
}

size_t DiagnosticEngine::flush(std::FILE* out) {
  std::sort(diagnostics_.begin(), diagnostics_.end());
  for (const Diagnostic& d : diagnostics_) {
    std::fprintf(out, "%s:%d:%d: error: %s [%s]\n", d.vpath.c_str(), d.line, d.col,
                 d.message.c_str(), d.check.c_str());
  }
  return diagnostics_.size();
}

}  // namespace mighty::lint
