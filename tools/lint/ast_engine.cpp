// The LibTooling AST engine (opt-in: -DMIGHTY_LINT_WITH_CLANG=ON).
//
// The portable token engine in checks/ trades type knowledge for
// buildability: it resolves container names lexically and skips what it
// cannot prove.  This engine runs the same five checks with real types from
// the compilation database, so member chains (`stripe.map`), function return
// values and typedef chains all resolve exactly.  Diagnostics flow through
// the same DiagnosticEngine, so the `// mighty-lint: allow(...)` comments
// collected by register_file() suppress AST findings identically.
//
// API surface is deliberately conservative — ASTMatchers + ClangTool only,
// stable since LLVM 10 — so the engine builds against any system LLVM/Clang
// from 14 up.

#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/ASTMatchers/ASTMatchers.h"
#include "clang/Basic/SourceManager.h"
#include "clang/Tooling/CompilationDatabase.h"
#include "clang/Tooling/Tooling.h"

#include "check.hpp"
#include "diagnostics.hpp"

namespace mighty::lint {

namespace {

namespace fs = std::filesystem;
using namespace clang;
using namespace clang::ast_matchers;

/// Maps a presumed source location back to the FileUnit it belongs to (the
/// engine must report against vpaths so suppressions and path scoping work).
class UnitIndex {
 public:
  explicit UnitIndex(const std::vector<FileUnit>& units) {
    for (const FileUnit& unit : units) {
      std::error_code ec;
      by_path_[fs::weakly_canonical(unit.fs_path, ec).string()] = &unit;
    }
  }

  const FileUnit* find(const SourceManager& sm, SourceLocation loc) const {
    const PresumedLoc presumed = sm.getPresumedLoc(sm.getExpansionLoc(loc));
    if (presumed.isInvalid()) return nullptr;
    std::error_code ec;
    const auto it =
        by_path_.find(fs::weakly_canonical(presumed.getFilename(), ec).string());
    return it == by_path_.end() ? nullptr : it->second;
  }

 private:
  std::map<std::string, const FileUnit*> by_path_;
};

struct Ctx {
  const UnitIndex& index;
  DiagnosticEngine& engine;
};

void report_at(const Ctx& ctx, const SourceManager& sm, SourceLocation loc,
               const std::string& check, const std::string& message,
               const char* scope = nullptr) {
  const FileUnit* unit = ctx.index.find(sm, loc);
  if (unit == nullptr) return;  // header outside the linted set
  if (scope != nullptr && !vpath_in(unit->vpath, scope)) return;
  const PresumedLoc presumed = sm.getPresumedLoc(sm.getExpansionLoc(loc));
  ctx.engine.report(*unit, static_cast<int>(presumed.getLine()),
                    static_cast<int>(presumed.getColumn()), check, message);
}

// --- raw-sync-primitive ------------------------------------------------------

class RawSyncCallback : public MatchFinder::MatchCallback {
 public:
  explicit RawSyncCallback(Ctx ctx) : ctx_(ctx) {}
  void run(const MatchFinder::MatchResult& result) override {
    const auto* loc = result.Nodes.getNodeAs<TypeLoc>("loc");
    if (loc == nullptr) return;
    const FileUnit* unit = ctx_.index.find(*result.SourceManager, loc->getBeginLoc());
    if (unit == nullptr || unit->vpath == "src/util/mutex.hpp" ||
        unit->vpath == "src/util/mutex.cpp") {
      return;
    }
    report_at(ctx_, *result.SourceManager, loc->getBeginLoc(), "raw-sync-primitive",
              "raw std:: synchronization type outside src/util/mutex.*: use the "
              "util::Mutex layer (src/util/mutex.hpp) so -Wthread-safety "
              "capabilities and the Debug lock-order checker apply");
  }

 private:
  Ctx ctx_;
};

// --- raw-assert --------------------------------------------------------------

class RawAssertCallback : public MatchFinder::MatchCallback {
 public:
  explicit RawAssertCallback(Ctx ctx) : ctx_(ctx) {}
  void run(const MatchFinder::MatchResult& result) override {
    const auto* call = result.Nodes.getNodeAs<CallExpr>("call");
    if (call == nullptr) return;
    report_at(ctx_, *result.SourceManager, call->getBeginLoc(), "raw-assert",
              "raw assert() compiles out under NDEBUG; use MIGHTY_ASSERT "
              "(src/util/assert.hpp), which stays armed in Release builds",
              "src/");
  }

 private:
  Ctx ctx_;
};

// --- nondeterministic-iteration ----------------------------------------------

class UnorderedIterationCallback : public MatchFinder::MatchCallback {
 public:
  explicit UnorderedIterationCallback(Ctx ctx) : ctx_(ctx) {}
  void run(const MatchFinder::MatchResult& result) override {
    const auto* loop = result.Nodes.getNodeAs<CXXForRangeStmt>("loop");
    if (loop == nullptr) return;
    report_at(ctx_, *result.SourceManager, loop->getBeginLoc(),
              "nondeterministic-iteration",
              "range-for over a std::unordered container: visit order is hash- "
              "and history-dependent, which breaks the bit-identical "
              "determinism contract — iterate a sorted snapshot, or annotate "
              "the loop with a reasoned allow if the body is provably "
              "order-independent",
              "src/");
  }

 private:
  Ctx ctx_;
};

// --- nonatomic-persist -------------------------------------------------------

class NonatomicPersistCallback : public MatchFinder::MatchCallback {
 public:
  explicit NonatomicPersistCallback(Ctx ctx) : ctx_(ctx) {}
  void run(const MatchFinder::MatchResult& result) override {
    const SourceManager& sm = *result.SourceManager;
    if (const auto* var = result.Nodes.getNodeAs<VarDecl>("ofstream")) {
      if (!exempt(sm, var->getBeginLoc())) {
        report_at(ctx_, sm, var->getBeginLoc(), "nonatomic-persist",
                  "std::ofstream bypasses util::write_file_atomically "
                  "(src/util/atomic_file.hpp): a crash mid-write leaves a "
                  "truncated file; write through the atomic helper");
      }
    }
    if (const auto* call = result.Nodes.getNodeAs<CallExpr>("fopen")) {
      if (!exempt(sm, call->getBeginLoc())) {
        report_at(ctx_, sm, call->getBeginLoc(), "nonatomic-persist",
                  "fopen() write paths bypass util::write_file_atomically "
                  "(src/util/atomic_file.hpp); write through the atomic helper "
                  "so readers never observe partial files");
      }
    }
  }

 private:
  bool exempt(const SourceManager& sm, SourceLocation loc) const {
    const FileUnit* unit = ctx_.index.find(sm, loc);
    return unit != nullptr && unit->vpath == "src/util/atomic_file.cpp";
  }

  Ctx ctx_;
};

// --- wire-enum-switch --------------------------------------------------------

class WireEnumSwitchCallback : public MatchFinder::MatchCallback {
 public:
  explicit WireEnumSwitchCallback(Ctx ctx) : ctx_(ctx) {}
  void run(const MatchFinder::MatchResult& result) override {
    const auto* stmt = result.Nodes.getNodeAs<SwitchStmt>("switch");
    const auto* decl = result.Nodes.getNodeAs<EnumDecl>("enum");
    if (stmt == nullptr || decl == nullptr) return;
    const std::string enum_name = decl->getNameAsString();

    std::set<std::string> covered;
    const SwitchCase* default_case = nullptr;
    for (const SwitchCase* sc = stmt->getSwitchCaseList(); sc != nullptr;
         sc = sc->getNextSwitchCase()) {
      if (const auto* cs = dyn_cast<CaseStmt>(sc)) {
        const Expr* lhs = cs->getLHS();
        if (lhs != nullptr) {
          if (const auto* ref =
                  dyn_cast<DeclRefExpr>(lhs->IgnoreParenImpCasts())) {
            if (const auto* enumerator =
                    dyn_cast<EnumConstantDecl>(ref->getDecl())) {
              covered.insert(enumerator->getNameAsString());
            }
          }
        }
      } else {
        default_case = sc;
      }
    }

    const SourceManager& sm = *result.SourceManager;
    if (default_case != nullptr) {
      report_at(ctx_, sm, default_case->getBeginLoc(), "wire-enum-switch",
                "switch over wire enum " + enum_name +
                    " has a default: label — new wire values must be handled "
                    "explicitly (docs/protocol.md freezes " + enum_name +
                    "); validate the raw value before the switch and list "
                    "every enumerator");
    }
    std::string missing;
    for (const EnumConstantDecl* enumerator : decl->enumerators()) {
      if (covered.count(enumerator->getNameAsString()) == 0) {
        missing += (missing.empty() ? "" : ", ") + enumerator->getNameAsString();
      }
    }
    if (!missing.empty() && !covered.empty()) {
      report_at(ctx_, sm, stmt->getBeginLoc(), "wire-enum-switch",
                "switch over wire enum " + enum_name + " does not handle: " +
                    missing +
                    " — every enumerator of a frozen wire enum must appear "
                    "(docs/protocol.md)");
    }
  }

 private:
  Ctx ctx_;
};

}  // namespace

bool run_ast_engine(const std::string& build_dir,
                    const std::vector<FileUnit>& units, DiagnosticEngine& engine) {
  std::string db_error;
  std::unique_ptr<tooling::CompilationDatabase> db =
      tooling::CompilationDatabase::loadFromDirectory(build_dir, db_error);
  if (db == nullptr) return false;

  // Only units the database knows how to compile (headers and standalone
  // fixtures fall back to the token engine's verdicts — already reported).
  std::vector<std::string> sources;
  const std::set<std::string> known = [&] {
    std::set<std::string> s;
    for (const std::string& f : db->getAllFiles()) {
      std::error_code ec;
      s.insert(fs::weakly_canonical(f, ec).string());
    }
    return s;
  }();
  for (const FileUnit& unit : units) {
    std::error_code ec;
    const std::string canonical = fs::weakly_canonical(unit.fs_path, ec).string();
    if (known.count(canonical) != 0) sources.push_back(canonical);
  }
  if (sources.empty()) return false;

  UnitIndex index(units);
  Ctx ctx{index, engine};

  MatchFinder finder;

  RawSyncCallback raw_sync(ctx);
  finder.addMatcher(
      typeLoc(loc(qualType(hasDeclaration(namedDecl(hasAnyName(
                  "::std::mutex", "::std::timed_mutex", "::std::recursive_mutex",
                  "::std::recursive_timed_mutex", "::std::shared_mutex",
                  "::std::shared_timed_mutex", "::std::condition_variable",
                  "::std::condition_variable_any", "::std::lock_guard",
                  "::std::unique_lock", "::std::shared_lock",
                  "::std::scoped_lock"))))))
          .bind("loc"),
      &raw_sync);

  // assert() expands to __assert_fail on glibc (__assert_rtn on Darwin);
  // matching the expansion catches the macro regardless of NDEBUG spelling.
  RawAssertCallback raw_assert(ctx);
  finder.addMatcher(
      callExpr(callee(functionDecl(hasAnyName("__assert_fail", "__assert_rtn"))))
          .bind("call"),
      &raw_assert);

  UnorderedIterationCallback unordered_iter(ctx);
  finder.addMatcher(
      cxxForRangeStmt(
          hasRangeInit(expr(hasType(qualType(hasUnqualifiedDesugaredType(
              recordType(hasDeclaration(cxxRecordDecl(hasAnyName(
                  "::std::unordered_map", "::std::unordered_set",
                  "::std::unordered_multimap", "::std::unordered_multiset"))))))))))
          .bind("loop"),
      &unordered_iter);

  NonatomicPersistCallback persist(ctx);
  finder.addMatcher(
      varDecl(hasType(qualType(hasUnqualifiedDesugaredType(recordType(
                  hasDeclaration(cxxRecordDecl(hasName("::std::basic_ofstream"))))))))
          .bind("ofstream"),
      &persist);
  finder.addMatcher(callExpr(callee(functionDecl(hasName("fopen")))).bind("fopen"),
                    &persist);

  WireEnumSwitchCallback wire_switch(ctx);
  finder.addMatcher(
      switchStmt(hasCondition(hasDescendant(declRefExpr(hasType(qualType(
                     hasDeclaration(enumDecl(hasAnyName("Tag", "ErrorCode"))
                                        .bind("enum"))))))))
          .bind("switch"),
      &wire_switch);

  tooling::ClangTool tool(*db, sources);
  return tool.run(tooling::newFrontendActionFactory(&finder).get()) == 0;
}

}  // namespace mighty::lint
