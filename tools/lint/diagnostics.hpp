#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "check.hpp"

/// \file diagnostics.hpp
/// \brief Shared diagnostic engine: suppression matching, ordering, output.
///
/// Every engine (portable token engine, LibTooling AST engine) funnels its
/// findings through one DiagnosticEngine, so the suppression syntax, the
/// output format and the exit-code policy are engine-independent.
///
/// Suppression syntax (the reason is mandatory — see docs/linting.md):
///
///     some_code();  // mighty-lint: allow(check-name): why this is safe
///
/// A trailing comment suppresses its own line; a comment alone on a line
/// suppresses the next line that carries code.  A malformed allow (unknown
/// check, missing reason) is itself a diagnostic under the reserved check
/// name "allow", and never suppresses anything; an allow that matched no
/// diagnostic is reported as stale when the full check set ran.

namespace mighty::lint {

struct Allow {
  int comment_line = 0;  ///< line the comment sits on
  int target_line = 0;   ///< line of code it suppresses
  std::string check;
  std::string reason;
  bool used = false;
};

struct FileSuppressions {
  std::vector<Allow> allows;
};

struct Diagnostic {
  std::string vpath;
  int line = 0;
  int col = 0;
  std::string check;
  std::string message;

  bool operator<(const Diagnostic& other) const {
    if (vpath != other.vpath) return vpath < other.vpath;
    if (line != other.line) return line < other.line;
    if (col != other.col) return col < other.col;
    if (check != other.check) return check < other.check;
    return message < other.message;
  }
};

class DiagnosticEngine final : public Sink {
public:
  /// `known_checks` validates allow(...) targets; reserved name "allow" is
  /// implicit.
  explicit DiagnosticEngine(std::set<std::string> known_checks)
      : known_checks_(std::move(known_checks)) {}

  /// Parses the allow-comments of `unit`; malformed ones become "allow"
  /// diagnostics immediately.  Call once per file before any check runs.
  void register_file(const FileUnit& unit);

  void report(const FileUnit& unit, int line, int col, const std::string& check,
              const std::string& message) override;

  /// Reports every allow that suppressed nothing.  Only meaningful when all
  /// checks ran; the caller skips this under --check filtering.
  void flag_unused_allows();

  /// Sorts, prints to `out`, returns the number of unsuppressed diagnostics.
  size_t flush(std::FILE* out);

  size_t suppressed_count() const { return suppressed_; }

private:
  std::set<std::string> known_checks_;
  std::map<std::string, FileSuppressions> suppressions_;  ///< by vpath
  std::vector<Diagnostic> diagnostics_;
  size_t suppressed_ = 0;
};

}  // namespace mighty::lint
