#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "check.hpp"
#include "compile_commands.hpp"
#include "diagnostics.hpp"

/// mighty-lint — the project's semantic invariant linter.
///
/// Generic tooling (clang-tidy, -Wall) cannot know that threads=N must be
/// bit-identical to threads=1, that persistent artifacts are written
/// atomically, that wire enums are frozen, or that all locking goes through
/// util::Mutex.  mighty-lint states those contracts once as checks and
/// gates them in CI and ctest.  See docs/linting.md for the check catalog,
/// the suppression syntax, and how to add a check.
///
/// Engines: the portable token engine below always builds (plain C++20);
/// configuring with -DMIGHTY_LINT_WITH_CLANG=ON swaps in the LibTooling AST
/// engine (ast_engine.cpp) for type-accurate matching on systems with LLVM/
/// Clang development headers.

namespace mighty::lint {

#if defined(MIGHTY_LINT_HAVE_CLANG)
/// ast_engine.cpp — runs the AST checks over `files` using the compilation
/// database at `build_dir`; reports through `engine`.  Returns false on a
/// frontend failure (which is itself a finding: the tree must parse).
bool run_ast_engine(const std::string& build_dir,
                    const std::vector<FileUnit>& units, DiagnosticEngine& engine);
#endif

namespace {

namespace fs = std::filesystem;

struct Options {
  std::string root = ".";
  std::string build_dir;            ///< -p: compile_commands.json location
  std::string as_vpath;             ///< --as: virtual path for a single input
  std::vector<std::string> paths;   ///< files or directories to lint
  std::set<std::string> only;       ///< --check filters
  std::string engine = "auto";      ///< auto | lex | ast
  bool list_checks = false;
  bool quiet = false;
};

constexpr const char* kUsage =
    "usage: mighty-lint [options] [path...]\n"
    "\n"
    "Lints C++ sources against the project's semantic invariants\n"
    "(docs/linting.md).  Paths may be files or directories (searched for\n"
    "*.cpp/*.hpp/*.h); with no paths, lints src/ tools/ examples/ bench/\n"
    "fuzz/ under --root.  Exit status: 0 clean, 1 findings, 2 usage error.\n"
    "\n"
    "  --root <dir>    project root for path scoping (default: .)\n"
    "  -p <build-dir>  read <build-dir>/compile_commands.json for the file\n"
    "                  list (and compiler flags, AST engine)\n"
    "  --as <vpath>    treat a single input file as this project-relative\n"
    "                  path (fixture testing)\n"
    "  --check <name>  run only this check (repeatable)\n"
    "  --engine <e>    auto|lex|ast (ast needs -DMIGHTY_LINT_WITH_CLANG=ON)\n"
    "  --list-checks   print the check catalog and exit\n"
    "  --quiet         suppress the summary line\n"
    "\n"
    "Suppression (reason required):\n"
    "  code();  // mighty-lint: allow(<check>): <reason>\n";

bool has_cpp_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

/// Project-relative '/'-separated path for scoping; falls back to the input
/// spelling when the file is outside the root.
std::string vpath_for(const fs::path& file, const fs::path& root) {
  std::error_code ec;
  const fs::path canonical_file = fs::weakly_canonical(file, ec);
  const fs::path canonical_root = fs::weakly_canonical(root, ec);
  const fs::path rel = canonical_file.lexically_relative(canonical_root);
  const std::string s = rel.generic_string();
  if (s.empty() || s.compare(0, 2, "..") == 0) return file.generic_string();
  return s;
}

std::vector<std::string> collect_files(const Options& options, std::string& error) {
  std::vector<std::string> files;
  std::vector<std::string> roots = options.paths;
  if (roots.empty()) {
    for (const char* tree : {"src", "tools", "examples", "bench", "fuzz"}) {
      const fs::path p = fs::path(options.root) / tree;
      if (fs::exists(p)) roots.push_back(p.string());
    }
  } else {
    for (std::string& p : roots) {
      if (!fs::path(p).is_absolute() && !fs::exists(p) &&
          fs::exists(fs::path(options.root) / p)) {
        p = (fs::path(options.root) / p).string();
      }
    }
  }
  for (const std::string& entry : roots) {
    const fs::path p(entry);
    if (fs::is_directory(p)) {
      for (auto it = fs::recursive_directory_iterator(p);
           it != fs::recursive_directory_iterator(); ++it) {
        if (it->is_regular_file() && has_cpp_extension(it->path())) {
          files.push_back(it->path().string());
        }
      }
    } else if (fs::is_regular_file(p)) {
      files.push_back(p.string());
    } else {
      error = "no such file or directory: " + entry;
      return {};
    }
  }
  if (!options.build_dir.empty()) {
    for (const std::string& f : compile_commands_files(options.build_dir)) {
      if (!fs::exists(f) || !has_cpp_extension(f)) continue;
      // The database lists everything the build compiles — tests included —
      // but the lint contract covers the production trees only (tests may
      // use raw streams and test-framework asserts freely).
      const std::string vpath = vpath_for(f, options.root);
      for (const char* tree : {"src/", "tools/", "examples/", "bench/", "fuzz/"}) {
        if (vpath_in(vpath, tree)) {
          files.push_back(f);
          break;
        }
      }
    }
  }
  // Canonicalize before dedup: the same file reached via the tree walk and
  // via the database ("./src/x.cpp" vs "/abs/src/x.cpp") must be one unit,
  // or its allow comments register twice and the duplicates read as stale.
  for (std::string& f : files) {
    std::error_code ec;
    const fs::path canonical = fs::weakly_canonical(f, ec);
    if (!ec) f = canonical.string();
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

int run(const Options& options) {
  auto checks = make_all_checks();
  if (options.list_checks) {
    for (const auto& check : checks) {
      std::printf("%-28s %s\n", check->name().c_str(), check->description().c_str());
    }
    return 0;
  }
  std::set<std::string> known;
  for (const auto& check : checks) known.insert(check->name());
  for (const std::string& name : options.only) {
    if (known.count(name) == 0) {
      std::fprintf(stderr, "mighty-lint: unknown check '%s' (see --list-checks)\n",
                   name.c_str());
      return 2;
    }
  }

  std::string error;
  const std::vector<std::string> files = collect_files(options, error);
  if (!error.empty()) {
    std::fprintf(stderr, "mighty-lint: %s\n", error.c_str());
    return 2;
  }
  if (files.empty()) {
    std::fprintf(stderr, "mighty-lint: no input files\n");
    return 2;
  }
  if (!options.as_vpath.empty() && files.size() != 1) {
    std::fprintf(stderr, "mighty-lint: --as requires exactly one input file\n");
    return 2;
  }

  std::vector<FileUnit> units;
  units.reserve(files.size());
  for (const std::string& file : files) {
    std::ifstream is(file, std::ios::binary);
    if (!is) {
      std::fprintf(stderr, "mighty-lint: cannot read %s\n", file.c_str());
      return 2;
    }
    std::ostringstream buffer;
    buffer << is.rdbuf();
    FileUnit unit;
    unit.fs_path = file;
    unit.vpath = options.as_vpath.empty() ? vpath_for(file, options.root)
                                          : options.as_vpath;
    unit.content = buffer.str();
    LexResult lexed = lex(unit.content);
    unit.tokens = std::move(lexed.tokens);
    unit.comments = std::move(lexed.comments);
    unit.quoted_includes = std::move(lexed.quoted_includes);
    units.push_back(std::move(unit));
  }

  DiagnosticEngine engine(known);
  for (const FileUnit& unit : units) engine.register_file(unit);

  bool used_ast = false;
#if defined(MIGHTY_LINT_HAVE_CLANG)
  if (options.engine == "ast" || (options.engine == "auto" && !options.build_dir.empty())) {
    used_ast = run_ast_engine(options.build_dir, units, engine);
  }
#else
  if (options.engine == "ast") {
    std::fprintf(stderr,
                 "mighty-lint: built without the Clang AST engine "
                 "(reconfigure with -DMIGHTY_LINT_WITH_CLANG=ON)\n");
    return 2;
  }
#endif
  if (!used_ast) {
    for (const auto& check : checks) {
      if (!options.only.empty() && options.only.count(check->name()) == 0) continue;
      check->scan_all(units);
      for (const FileUnit& unit : units) check->run(unit, engine);
    }
  }
  // A stale allow is only provably stale when every check had its chance.
  if (options.only.empty()) engine.flag_unused_allows();

  const size_t findings = engine.flush(stdout);
  if (!options.quiet) {
    std::printf("mighty-lint: %zu finding(s), %zu suppressed, %zu file(s)\n",
                findings, engine.suppressed_count(), units.size());
  }
  return findings == 0 ? 0 : 1;
}

}  // namespace
}  // namespace mighty::lint

int main(int argc, char** argv) {
  using mighty::lint::Options;
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "mighty-lint: %s needs a value\n%s", arg.c_str(),
                     mighty::lint::kUsage);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--root") options.root = value();
    else if (arg == "-p") options.build_dir = value();
    else if (arg == "--as") options.as_vpath = value();
    else if (arg == "--check") options.only.insert(value());
    else if (arg == "--engine") options.engine = value();
    else if (arg == "--list-checks") options.list_checks = true;
    else if (arg == "--quiet") options.quiet = true;
    else if (arg == "--help" || arg == "-h") {
      std::fputs(mighty::lint::kUsage, stdout);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "mighty-lint: unknown option %s\n%s", arg.c_str(),
                   mighty::lint::kUsage);
      return 2;
    } else {
      options.paths.push_back(arg);
    }
  }
  if (options.engine != "auto" && options.engine != "lex" && options.engine != "ast") {
    std::fprintf(stderr, "mighty-lint: --engine must be auto, lex or ast\n");
    return 2;
  }
  try {
    return mighty::lint::run(options);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mighty-lint: %s\n", e.what());
    return 2;
  }
}
