#pragma once

#include <string>
#include <vector>

/// \file lexer.hpp
/// \brief Minimal C++ token scanner for the portable lint engine.
///
/// mighty-lint's always-available engine works on a token stream, not an AST:
/// it must build with nothing but a C++20 compiler (the LibTooling engine in
/// ast_engine.cpp is an opt-in upgrade, see docs/linting.md).  The scanner
/// understands exactly as much C++ lexing as the checks need to be reliable:
/// comments (collected separately — the suppression syntax lives in them),
/// string/char literals including raw strings (so "std::mutex" inside a
/// message never looks like a type use), digit separators, preprocessor
/// lines (skipped wholesale, with quoted #include targets extracted for the
/// include-closure analysis), and `::` as a single token (so a range-for's
/// `:` separator is never confused with a scope operator).

namespace mighty::lint {

struct Token {
  enum class Kind { ident, number, string_lit, char_lit, punct, comment };
  Kind kind;
  std::string text;
  int line = 0;  ///< 1-based
  int col = 0;   ///< 1-based
};

struct LexResult {
  std::vector<Token> tokens;    ///< code tokens, comments excluded
  std::vector<Token> comments;  ///< comment tokens (text without delimiters)
  std::vector<std::string> quoted_includes;  ///< #include "..." targets, in order
};

/// Scans `content`; never fails (unknown bytes are skipped).
LexResult lex(const std::string& content);

}  // namespace mighty::lint
