#include <map>
#include <set>

#include "../check.hpp"

/// check: wire-enum-switch
///
/// The wire enums — serve::Tag (frame tags) and api::ErrorCode — are frozen
/// by docs/protocol.md: values are append-only and every consumer must take
/// an explicit position on every value.  A `default:` label in a switch over
/// a wire enum silently swallows newly appended values (a new frame tag
/// would fall into whatever the default happens to do), and a switch missing
/// enumerators compiles clean while ignoring real wire traffic.  Handle the
/// out-of-enum raw byte BEFORE the switch (serve::is_known_tag), then switch
/// exhaustively with no default so -Wswitch also flags new values at the
/// compiler level.
///
/// Watched enums are matched by name wherever they are defined in the
/// scanned set (the names are reserved project-wide); their enumerator lists
/// come from the definitions found in pass 1.

namespace mighty::lint {

namespace {

const std::set<std::string>& watched_enums() {
  static const std::set<std::string> names = {"Tag", "ErrorCode"};
  return names;
}

class WireEnumSwitchCheck final : public Check {
public:
  std::string name() const override { return "wire-enum-switch"; }
  std::string description() const override {
    return "switch over a frozen wire enum (serve::Tag, api::ErrorCode) with "
           "a default: label or missing enumerators";
  }

  void scan_all(const std::vector<FileUnit>& units) override {
    enumerators_.clear();
    for (const FileUnit& unit : units) collect_enums(unit);
  }

  void run(const FileUnit& unit, Sink& sink) const override {
    const auto& tokens = unit.tokens;
    for (size_t i = 0; i + 1 < tokens.size(); ++i) {
      if (tokens[i].kind != Token::Kind::ident || tokens[i].text != "switch") continue;
      if (tokens[i + 1].text != "(") continue;
      inspect_switch(unit, i, sink);
    }
  }

private:
  void collect_enums(const FileUnit& unit) {
    const auto& tokens = unit.tokens;
    for (size_t i = 0; i + 2 < tokens.size(); ++i) {
      if (tokens[i].kind != Token::Kind::ident || tokens[i].text != "enum") continue;
      size_t j = i + 1;
      if (tokens[j].text == "class" || tokens[j].text == "struct") ++j;
      if (j >= tokens.size() || tokens[j].kind != Token::Kind::ident) continue;
      const std::string enum_name = tokens[j].text;
      if (watched_enums().count(enum_name) == 0) continue;
      // Skip an optional `: underlying_type` to the '{' (stop at ';' — that
      // would be a forward declaration with no enumerator list).
      while (j < tokens.size() && tokens[j].text != "{" && tokens[j].text != ";") ++j;
      if (j >= tokens.size() || tokens[j].text != "{") continue;
      // Enumerators: the first identifier of each comma-separated segment.
      int paren_depth = 0;
      bool at_segment_start = true;
      for (++j; j < tokens.size(); ++j) {
        const Token& t = tokens[j];
        if (t.kind == Token::Kind::punct) {
          if (t.text == "(") ++paren_depth;
          else if (t.text == ")") --paren_depth;
          else if (t.text == "," && paren_depth == 0) at_segment_start = true;
          else if (t.text == "}" && paren_depth == 0) break;
          continue;
        }
        if (at_segment_start && t.kind == Token::Kind::ident) {
          enumerators_[enum_name].insert(t.text);
        }
        at_segment_start = false;
      }
    }
  }

  struct SwitchScan {
    bool has_default = false;
    int default_line = 0;
    int default_col = 0;
    std::map<std::string, std::set<std::string>> cases;  ///< enum -> enumerators
  };

  /// Scans the body starting at tokens[i] == '{'; returns the index of the
  /// matching '}'.  Nested switches are scanned recursively and their labels
  /// kept out of `out`.
  size_t scan_body(const std::vector<Token>& tokens, size_t i, SwitchScan& out) const {
    int depth = 0;
    for (; i < tokens.size(); ++i) {
      const Token& t = tokens[i];
      if (t.kind == Token::Kind::punct) {
        if (t.text == "{") ++depth;
        else if (t.text == "}") {
          if (--depth == 0) return i;
        }
        continue;
      }
      if (t.kind != Token::Kind::ident) continue;
      if (t.text == "switch" && i + 1 < tokens.size() && tokens[i + 1].text == "(") {
        // Nested switch: skip to its body and swallow it with a scratch scan.
        size_t j = i + 1;
        int pd = 0;
        for (; j < tokens.size(); ++j) {
          if (tokens[j].text == "(") ++pd;
          else if (tokens[j].text == ")" && --pd == 0) break;
        }
        while (j < tokens.size() && tokens[j].text != "{") ++j;
        if (j >= tokens.size()) return tokens.size();
        SwitchScan scratch;
        i = scan_body(tokens, j, scratch);
        continue;
      }
      if (t.text == "default" && i + 1 < tokens.size() && tokens[i + 1].text == ":") {
        out.has_default = true;
        out.default_line = t.line;
        out.default_col = t.col;
        continue;
      }
      if (t.text == "case") {
        // Collect `Enum::enumerator` pairs up to the label's ':'.
        for (size_t j = i + 1; j + 2 < tokens.size(); ++j) {
          if (tokens[j].kind == Token::Kind::punct && tokens[j].text == ":") break;
          if (tokens[j].kind == Token::Kind::ident && tokens[j + 1].text == "::" &&
              tokens[j + 2].kind == Token::Kind::ident &&
              watched_enums().count(tokens[j].text) != 0) {
            out.cases[tokens[j].text].insert(tokens[j + 2].text);
          }
        }
      }
    }
    return tokens.size();
  }

  void inspect_switch(const FileUnit& unit, size_t switch_idx, Sink& sink) const {
    const auto& tokens = unit.tokens;
    // Condition tokens (watched enum named in the condition also marks the
    // switch, e.g. `switch (static_cast<Tag>(raw))` with zero cases yet).
    size_t j = switch_idx + 1;
    int pd = 0;
    std::set<std::string> cond_enums;
    for (; j < tokens.size(); ++j) {
      if (tokens[j].text == "(") ++pd;
      else if (tokens[j].text == ")") {
        if (--pd == 0) break;
      } else if (tokens[j].kind == Token::Kind::ident &&
                 watched_enums().count(tokens[j].text) != 0) {
        cond_enums.insert(tokens[j].text);
      }
    }
    while (j < tokens.size() && tokens[j].text != "{") ++j;
    if (j >= tokens.size()) return;

    SwitchScan scan;
    scan_body(tokens, j, scan);
    std::set<std::string> involved = cond_enums;
    for (const auto& [e, cases] : scan.cases) involved.insert(e);
    if (involved.empty()) return;

    for (const std::string& e : involved) {
      if (scan.has_default) {
        sink.report(unit, scan.default_line, scan.default_col, name(),
                    "switch over wire enum " + e +
                        " has a default: label — new wire values must be "
                        "handled explicitly (docs/protocol.md freezes " + e +
                        "); validate the raw value before the switch and list "
                        "every enumerator");
      }
      const auto def = enumerators_.find(e);
      if (def == enumerators_.end()) continue;
      std::string missing;
      for (const std::string& enumerator : def->second) {
        const auto c = scan.cases.find(e);
        if (c == scan.cases.end() || c->second.count(enumerator) == 0) {
          missing += (missing.empty() ? "" : ", ") + enumerator;
        }
      }
      if (!missing.empty() && !scan.cases.empty()) {
        sink.report(unit, tokens[switch_idx].line, tokens[switch_idx].col, name(),
                    "switch over wire enum " + e + " does not handle: " + missing +
                        " — every enumerator of a frozen wire enum must appear "
                        "(docs/protocol.md)");
      }
    }
  }

  std::map<std::string, std::set<std::string>> enumerators_;
};

}  // namespace

std::unique_ptr<Check> make_wire_enum_switch_check() {
  return std::make_unique<WireEnumSwitchCheck>();
}

}  // namespace mighty::lint
