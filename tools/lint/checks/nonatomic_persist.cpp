#include "../check.hpp"

/// check: nonatomic-persist
///
/// Persistent artifacts (database, oracle cache, BLIF/JSON outputs) are
/// written via util::write_file_atomically (src/util/atomic_file.hpp, PR 4):
/// temp file + atomic rename, so a crash mid-write never leaves a truncated
/// file and a concurrent reader never observes a half-written state.  A raw
/// std::ofstream or fopen(...) write path silently reintroduces both
/// failure modes.  Only src/util/atomic_file.cpp (the implementation) may
/// open files for writing directly.

namespace mighty::lint {

namespace {

class NonatomicPersistCheck final : public Check {
public:
  std::string name() const override { return "nonatomic-persist"; }
  std::string description() const override {
    return "file writes bypassing util::write_file_atomically "
           "(crash leaves truncated artifacts)";
  }

  void run(const FileUnit& unit, Sink& sink) const override {
    if (unit.vpath == "src/util/atomic_file.cpp") return;
    const auto& tokens = unit.tokens;
    for (size_t i = 0; i < tokens.size(); ++i) {
      if (tokens[i].kind != Token::Kind::ident) continue;
      // std::ofstream (construction or type use — an ofstream exists to
      // write, so every use is a write path).
      if (tokens[i].text == "std" && i + 2 < tokens.size() &&
          tokens[i + 1].text == "::" && tokens[i + 2].text == "ofstream") {
        sink.report(unit, tokens[i].line, tokens[i].col, name(),
                    "std::ofstream bypasses util::write_file_atomically "
                    "(src/util/atomic_file.hpp): a crash mid-write leaves a "
                    "truncated file; write through the atomic helper");
        continue;
      }
      // fopen / std::fopen calls (not members named fopen).
      if (tokens[i].text == "fopen" && i + 1 < tokens.size() &&
          tokens[i + 1].text == "(") {
        if (i > 0 && (tokens[i - 1].text == "." || tokens[i - 1].text == "->")) {
          continue;
        }
        sink.report(unit, tokens[i].line, tokens[i].col, name(),
                    "fopen() write paths bypass util::write_file_atomically "
                    "(src/util/atomic_file.hpp); write through the atomic "
                    "helper so readers never observe partial files");
      }
    }
  }
};

}  // namespace

std::unique_ptr<Check> make_nonatomic_persist_check() {
  return std::make_unique<NonatomicPersistCheck>();
}

}  // namespace mighty::lint
