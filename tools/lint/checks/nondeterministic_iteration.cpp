#include <map>
#include <set>

#include "../check.hpp"

/// check: nondeterministic-iteration
///
/// The project's hardest contract is bit-identical determinism: threads=N
/// must equal threads=1, warm runs must equal cold runs, and a daemon must
/// answer byte-for-byte like a local session.  Iterating a std::unordered_*
/// container makes visit order depend on hasher, libstdc++ version, and
/// insertion history — a silent hazard whenever anything downstream depends
/// on the order.  Sites must iterate a sorted snapshot, or carry a reasoned
/// `// mighty-lint: allow(nondeterministic-iteration): ...` stating why the
/// loop body is order-independent.  Scoped to src/ (production code).
///
/// The portable engine has no types, so it resolves names lexically, in
/// precision order: declarations in the file itself and its quoted-include
/// closure first, then a project-global table used only when every
/// declaration of that name in the whole tree agrees on unordered-ness.
/// Ambiguous names are skipped (conservative); the AST engine resolves the
/// real type.

namespace mighty::lint {

namespace {

constexpr unsigned kUnordered = 1;
constexpr unsigned kOther = 2;

const std::set<std::string>& unordered_types() {
  static const std::set<std::string> types = {
      "unordered_map", "unordered_set", "unordered_multimap", "unordered_multiset"};
  return types;
}

/// Container-ish std:: types recorded to detect name collisions (a `map`
/// declared std::vector somewhere must poison the global verdict on `map`).
const std::set<std::string>& other_container_types() {
  static const std::set<std::string> types = {
      "vector", "array", "map", "set", "multimap", "multiset",
      "deque",  "list",  "string", "span", "initializer_list", "bitset"};
  return types;
}

/// Skips a balanced <...> starting at tokens[i] == "<"; returns the index
/// one past the closing ">", or `fail` when the angle run is clearly an
/// expression (hits ';' or end) — comparison operators masquerade as angles.
size_t skip_angles(const std::vector<Token>& tokens, size_t i, size_t fail) {
  int depth = 0;
  for (; i < tokens.size(); ++i) {
    const std::string& t = tokens[i].text;
    if (tokens[i].kind != Token::Kind::punct) continue;
    if (t == "<") ++depth;
    else if (t == ">") {
      if (--depth == 0) return i + 1;
    } else if (t == ";" || t == "{") {
      return fail;
    }
  }
  return fail;
}

struct DeclTables {
  std::map<std::string, unsigned> names;  ///< declared identifier -> kind mask
};

/// Collects `std::<container><...> [&*] name` declarations (and one level of
/// `using Alias = std::unordered_*<...>` + `Alias name` declarations).
DeclTables collect_decls(const FileUnit& unit) {
  DeclTables out;
  const auto& tokens = unit.tokens;

  // Aliases first, so `Alias name` declarations later in the file resolve.
  std::set<std::string> unordered_aliases;
  for (size_t i = 0; i + 5 < tokens.size(); ++i) {
    if (tokens[i].text != "using" || tokens[i].kind != Token::Kind::ident) continue;
    if (tokens[i + 1].kind != Token::Kind::ident) continue;
    if (tokens[i + 2].text != "=") continue;
    if (tokens[i + 3].text != "std" || tokens[i + 4].text != "::") continue;
    if (unordered_types().count(tokens[i + 5].text) != 0) {
      unordered_aliases.insert(tokens[i + 1].text);
    }
  }

  auto record_after_type = [&](size_t after, unsigned kind) {
    // Past the template arguments: skip references/pointers, accept an
    // identifier introduced as a variable/field/parameter.
    size_t j = after;
    while (j < tokens.size() &&
           (tokens[j].text == "&" || tokens[j].text == "*" || tokens[j].text == "const")) {
      ++j;
    }
    if (j + 1 >= tokens.size() || tokens[j].kind != Token::Kind::ident) return;
    // An attribute macro may sit between the name and the terminator, e.g.
    // `std::unordered_map<...> map MIGHTY_GUARDED_BY(mutex);` — skip it.
    size_t k = j + 1;
    if (tokens[k].kind == Token::Kind::ident && k + 1 < tokens.size() &&
        tokens[k + 1].text == "(") {
      int pd = 0;
      size_t m = k + 1;
      for (; m < tokens.size(); ++m) {
        if (tokens[m].text == "(") ++pd;
        else if (tokens[m].text == ")" && --pd == 0) { k = m + 1; break; }
      }
      if (pd != 0 || k >= tokens.size()) return;
    }
    const std::string& next = tokens[k].text;
    if (next == ";" || next == "=" || next == "{" || next == "(" || next == "," ||
        next == ")" || next == "[") {
      out.names[tokens[j].text] |= kind;
    }
  };

  for (size_t i = 0; i + 3 < tokens.size(); ++i) {
    if (tokens[i].kind == Token::Kind::ident && tokens[i].text == "std" &&
        tokens[i + 1].text == "::" && tokens[i + 2].kind == Token::Kind::ident) {
      const std::string& type = tokens[i + 2].text;
      const bool unordered = unordered_types().count(type) != 0;
      if (!unordered && other_container_types().count(type) == 0) continue;
      size_t after;
      if (tokens[i + 3].text == "<") {
        after = skip_angles(tokens, i + 3, 0);
        if (after == 0) continue;
      } else if (type == "string") {
        after = i + 3;  // std::string has no template args at use sites
      } else {
        continue;
      }
      record_after_type(after, unordered ? kUnordered : kOther);
    } else if (tokens[i].kind == Token::Kind::ident &&
               unordered_aliases.count(tokens[i].text) != 0) {
      record_after_type(i + 1, kUnordered);
    }
  }
  return out;
}

class NondeterministicIterationCheck final : public Check {
public:
  std::string name() const override { return "nondeterministic-iteration"; }
  std::string description() const override {
    return "iteration over std::unordered_* in src/ (hash order breaks the "
           "bit-identical determinism contract)";
  }

  void scan_all(const std::vector<FileUnit>& units) override {
    decls_.clear();
    global_.names.clear();
    by_vpath_.clear();
    for (const FileUnit& unit : units) {
      DeclTables t = collect_decls(unit);
      for (const auto& [n, kind] : t.names) global_.names[n] |= kind;
      decls_.emplace(unit.vpath, std::move(t));
      by_vpath_.emplace(unit.vpath, &unit);
    }
    // Include closure per file (quoted includes only, resolved against the
    // project's include conventions: -Isrc plus sibling paths).
    for (const FileUnit& unit : units) {
      std::set<std::string> closure;
      std::vector<const FileUnit*> frontier{&unit};
      closure.insert(unit.vpath);
      while (!frontier.empty()) {
        const FileUnit* u = frontier.back();
        frontier.pop_back();
        const std::string dir = u->vpath.substr(0, u->vpath.find_last_of('/') + 1);
        for (const std::string& inc : u->quoted_includes) {
          for (const std::string& candidate :
               {std::string("src/") + inc, dir + inc, inc}) {
            const auto it = by_vpath_.find(candidate);
            if (it != by_vpath_.end() && closure.insert(candidate).second) {
              frontier.push_back(it->second);
            }
          }
        }
      }
      closure_.emplace(unit.vpath, std::move(closure));
    }
  }

  void run(const FileUnit& unit, Sink& sink) const override {
    if (!vpath_in(unit.vpath, "src/")) return;
    const auto& tokens = unit.tokens;
    for (size_t i = 0; i + 1 < tokens.size(); ++i) {
      if (tokens[i].kind != Token::Kind::ident || tokens[i].text != "for") continue;
      if (tokens[i + 1].text != "(") continue;
      inspect_for(unit, i + 1, sink);
    }
  }

private:
  /// 0 = not unordered / unknown, 1 = unordered.
  bool resolves_unordered(const FileUnit& unit, const std::string& name) const {
    unsigned mask = 0;
    const auto closure = closure_.find(unit.vpath);
    if (closure != closure_.end()) {
      for (const std::string& vpath : closure->second) {
        const auto t = decls_.find(vpath);
        if (t == decls_.end()) continue;
        const auto n = t->second.names.find(name);
        if (n != t->second.names.end()) mask |= n->second;
      }
    }
    if (mask != 0) return mask == kUnordered;
    const auto g = global_.names.find(name);
    return g != global_.names.end() && g->second == kUnordered;
  }

  void inspect_for(const FileUnit& unit, size_t open, Sink& sink) const {
    const auto& tokens = unit.tokens;
    // Find the matching ')', the first top-level ';' and the first
    // top-level ':' (a range-for has the ':' and no ';' before it).
    int depth = 0;
    size_t close = 0, semi = 0, colon = 0;
    for (size_t i = open; i < tokens.size(); ++i) {
      if (tokens[i].kind != Token::Kind::punct) continue;
      const std::string& t = tokens[i].text;
      if (t == "(" || t == "[" || t == "{") ++depth;
      else if (t == ")" || t == "]" || t == "}") {
        if (t == ")" && depth == 1) { close = i; break; }
        --depth;
      } else if (depth == 1 && t == ";" && semi == 0) semi = i;
      else if (depth == 1 && t == ":" && colon == 0) colon = i;
    }
    if (close == 0) return;

    if (colon != 0 && (semi == 0 || colon < semi)) {
      // Range-for: judge the terminal identifier of the range expression.
      // `x.f()` calls and `x[i]` subscripts yield unknowable types — skipped
      // here, caught by the AST engine.
      if (close < 1) return;
      const Token& last = tokens[close - 1];
      if (last.kind != Token::Kind::ident || close - 1 <= colon) return;
      if (resolves_unordered(unit, last.text)) {
        report(unit, tokens[open].line, tokens[open].col, last.text, "range-for", sink);
      }
      return;
    }

    // Classic for: an iterator loop `for (auto it = X.begin(); ...`.
    const size_t init_end = semi == 0 ? close : semi;
    for (size_t i = open + 1; i + 3 < init_end; ++i) {
      if (tokens[i].kind != Token::Kind::ident) continue;
      if (tokens[i + 1].text != "." && tokens[i + 1].text != "->") continue;
      if (tokens[i + 2].text != "begin" && tokens[i + 2].text != "cbegin") continue;
      if (tokens[i + 3].text != "(") continue;
      if (resolves_unordered(unit, tokens[i].text)) {
        report(unit, tokens[i].line, tokens[i].col, tokens[i].text, "iterator loop",
               sink);
        return;
      }
    }
  }

  void report(const FileUnit& unit, int line, int col, const std::string& container,
              const std::string& how, Sink& sink) const {
    sink.report(unit, line, col, name(),
                how + " over std::unordered container '" + container +
                    "': visit order is hash- and history-dependent, which "
                    "breaks the bit-identical determinism contract — iterate "
                    "a sorted snapshot, or annotate the loop with a reasoned "
                    "allow if the body is provably order-independent");
  }

  std::map<std::string, DeclTables> decls_;          ///< by vpath
  std::map<std::string, const FileUnit*> by_vpath_;  ///< lookup for closure walk
  std::map<std::string, std::set<std::string>> closure_;
  DeclTables global_;
};

}  // namespace

std::unique_ptr<Check> make_nondeterministic_iteration_check() {
  return std::make_unique<NondeterministicIterationCheck>();
}

}  // namespace mighty::lint
