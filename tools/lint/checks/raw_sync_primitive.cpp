#include <set>

#include "../check.hpp"

/// check: raw-sync-primitive
///
/// All synchronization goes through the capability-annotated util::Mutex
/// layer (src/util/mutex.hpp, PR 9): util::Mutex/SharedMutex/CondVar carry
/// Clang thread-safety capabilities and a LockRank for the Debug lock-order
/// checker.  A raw std::mutex is invisible to both gates — the analysis
/// cannot prove anything about data it guards, and an inversion against a
/// ranked lock is never caught.  Only src/util/mutex.* may name the raw
/// types (it wraps them).

namespace mighty::lint {

namespace {

const std::set<std::string>& raw_sync_types() {
  static const std::set<std::string> types = {
      "mutex",
      "timed_mutex",
      "recursive_mutex",
      "recursive_timed_mutex",
      "shared_mutex",
      "shared_timed_mutex",
      "condition_variable",
      "condition_variable_any",
      "lock_guard",
      "unique_lock",
      "shared_lock",
      "scoped_lock",
  };
  return types;
}

class RawSyncPrimitiveCheck final : public Check {
public:
  std::string name() const override { return "raw-sync-primitive"; }
  std::string description() const override {
    return "std:: synchronization primitives outside src/util/mutex.* "
           "(use the capability-annotated util::Mutex layer)";
  }

  void run(const FileUnit& unit, Sink& sink) const override {
    if (unit.vpath == "src/util/mutex.hpp" || unit.vpath == "src/util/mutex.cpp") {
      return;
    }
    const auto& tokens = unit.tokens;
    for (size_t i = 0; i + 2 < tokens.size(); ++i) {
      if (tokens[i].kind != Token::Kind::ident || tokens[i].text != "std") continue;
      if (tokens[i + 1].text != "::") continue;
      const Token& type = tokens[i + 2];
      if (type.kind != Token::Kind::ident || raw_sync_types().count(type.text) == 0) {
        continue;
      }
      sink.report(unit, tokens[i].line, tokens[i].col, name(),
                  "raw std::" + type.text +
                      " outside src/util/mutex.*: use the util::Mutex layer "
                      "(src/util/mutex.hpp) so -Wthread-safety capabilities and "
                      "the Debug lock-order checker apply");
    }
  }
};

}  // namespace

std::unique_ptr<Check> make_raw_sync_primitive_check() {
  return std::make_unique<RawSyncPrimitiveCheck>();
}

}  // namespace mighty::lint
