#include "../check.hpp"

/// check: raw-assert
///
/// `assert` vanishes under NDEBUG — exactly the build the benches and any
/// production binary run — so an invariant guarded by it is only ever
/// exercised in the Debug CI leg.  MIGHTY_ASSERT (src/util/assert.hpp, PR 6)
/// stays armed in every build type and compiles out only under an explicit
/// -DMIGHTY_UNCHECKED.  Scoped to src/: tests and fixtures may use whatever
/// the test framework provides.

namespace mighty::lint {

namespace {

class RawAssertCheck final : public Check {
public:
  std::string name() const override { return "raw-assert"; }
  std::string description() const override {
    return "assert() in src/ (use MIGHTY_ASSERT, which stays armed in Release)";
  }

  void run(const FileUnit& unit, Sink& sink) const override {
    if (!vpath_in(unit.vpath, "src/")) return;
    const auto& tokens = unit.tokens;
    for (size_t i = 0; i + 1 < tokens.size(); ++i) {
      if (tokens[i].kind != Token::Kind::ident || tokens[i].text != "assert") continue;
      if (tokens[i + 1].text != "(") continue;
      // `foo.assert(...)`, `Foo::assert(...)`: a member or qualified name,
      // not the <cassert> macro.
      if (i > 0 && (tokens[i - 1].text == "." || tokens[i - 1].text == "->" ||
                    tokens[i - 1].text == "::")) {
        continue;
      }
      sink.report(unit, tokens[i].line, tokens[i].col, name(),
                  "raw assert() compiles out under NDEBUG; use MIGHTY_ASSERT "
                  "(src/util/assert.hpp), which stays armed in Release builds");
    }
  }
};

}  // namespace

std::unique_ptr<Check> make_raw_assert_check() {
  return std::make_unique<RawAssertCheck>();
}

}  // namespace mighty::lint
