#include "check.hpp"

/// Registry: the factories live in their check's own file; this is the one
/// place that fixes the order (stable, documented in docs/linting.md).

namespace mighty::lint {

std::unique_ptr<Check> make_raw_sync_primitive_check();
std::unique_ptr<Check> make_raw_assert_check();
std::unique_ptr<Check> make_nondeterministic_iteration_check();
std::unique_ptr<Check> make_nonatomic_persist_check();
std::unique_ptr<Check> make_wire_enum_switch_check();

std::vector<std::unique_ptr<Check>> make_all_checks() {
  std::vector<std::unique_ptr<Check>> checks;
  checks.push_back(make_raw_sync_primitive_check());
  checks.push_back(make_raw_assert_check());
  checks.push_back(make_nondeterministic_iteration_check());
  checks.push_back(make_nonatomic_persist_check());
  checks.push_back(make_wire_enum_switch_check());
  return checks;
}

}  // namespace mighty::lint
