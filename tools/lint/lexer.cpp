#include "lexer.hpp"

#include <cctype>

namespace mighty::lint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

class Scanner {
public:
  explicit Scanner(const std::string& content) : s_(content) {}

  LexResult run() {
    while (pos_ < s_.size()) {
      start_line_ = line_;
      start_col_ = col_;
      const char c = s_[pos_];
      if (c == '\n' || c == ' ' || c == '\t' || c == '\r' || c == '\f' || c == '\v') {
        advance();
      } else if (c == '/' && peek(1) == '/') {
        line_comment();
      } else if (c == '/' && peek(1) == '*') {
        block_comment();
      } else if (c == '#' && at_line_start_) {
        preprocessor_line();
      } else if (c == '"') {
        string_literal();
      } else if (c == '\'') {
        char_literal();
      } else if (ident_start(c)) {
        identifier();
      } else if (std::isdigit(static_cast<unsigned char>(c))) {
        number();
      } else {
        punct();
      }
    }
    return std::move(result_);
  }

private:
  char peek(size_t ahead) const {
    return pos_ + ahead < s_.size() ? s_[pos_ + ahead] : '\0';
  }

  void advance() {
    if (s_[pos_] == '\n') {
      ++line_;
      col_ = 1;
      at_line_start_ = true;
    } else {
      if (!std::isspace(static_cast<unsigned char>(s_[pos_]))) at_line_start_ = false;
      ++col_;
    }
    ++pos_;
  }

  void emit(Token::Kind kind, std::string text) {
    result_.tokens.push_back({kind, std::move(text), start_line_, start_col_});
  }

  void line_comment() {
    advance();  // '/'
    advance();  // '/'
    std::string text;
    while (pos_ < s_.size() && s_[pos_] != '\n') {
      text.push_back(s_[pos_]);
      advance();
    }
    result_.comments.push_back({Token::Kind::comment, text, start_line_, start_col_});
  }

  void block_comment() {
    advance();  // '/'
    advance();  // '*'
    std::string text;
    while (pos_ < s_.size() && !(s_[pos_] == '*' && peek(1) == '/')) {
      text.push_back(s_[pos_]);
      advance();
    }
    if (pos_ < s_.size()) {
      advance();  // '*'
      advance();  // '/'
    }
    result_.comments.push_back({Token::Kind::comment, text, start_line_, start_col_});
  }

  /// Skips a whole logical preprocessor line (backslash continuations
  /// included), after extracting any quoted #include target.  Macro bodies
  /// are deliberately invisible to the checks; the AST engine sees through
  /// them, the portable engine documents the limitation.
  void preprocessor_line() {
    std::string text;
    while (pos_ < s_.size()) {
      if (s_[pos_] == '\\' && peek(1) == '\n') {
        advance();
        advance();
        continue;
      }
      if (s_[pos_] == '\n') break;
      // A trailing // comment would hide the newline otherwise; a /* on a
      // directive line is rare enough to ignore (worst case: the rest of the
      // directive line joins the comment text).
      if (s_[pos_] == '/' && peek(1) == '/') {
        line_comment();
        break;
      }
      text.push_back(s_[pos_]);
      advance();
    }
    // `#  include "path"` with arbitrary interior whitespace.
    size_t i = 1;  // past '#'
    while (i < text.size() && (text[i] == ' ' || text[i] == '\t')) ++i;
    if (text.compare(i, 7, "include") == 0) {
      i += 7;
      while (i < text.size() && (text[i] == ' ' || text[i] == '\t')) ++i;
      if (i < text.size() && text[i] == '"') {
        const size_t end = text.find('"', i + 1);
        if (end != std::string::npos) {
          result_.quoted_includes.push_back(text.substr(i + 1, end - i - 1));
        }
      }
    }
  }

  void string_literal() {
    advance();  // opening quote
    std::string text;
    while (pos_ < s_.size() && s_[pos_] != '"' && s_[pos_] != '\n') {
      if (s_[pos_] == '\\' && pos_ + 1 < s_.size()) {
        text.push_back(s_[pos_]);
        advance();
      }
      text.push_back(s_[pos_]);
      advance();
    }
    if (pos_ < s_.size() && s_[pos_] == '"') advance();
    emit(Token::Kind::string_lit, text);
  }

  void raw_string_literal() {
    advance();  // opening quote
    std::string delim;
    while (pos_ < s_.size() && s_[pos_] != '(') {
      delim.push_back(s_[pos_]);
      advance();
    }
    if (pos_ < s_.size()) advance();  // '('
    const std::string closer = ")" + delim + "\"";
    std::string text;
    while (pos_ < s_.size() && s_.compare(pos_, closer.size(), closer) != 0) {
      text.push_back(s_[pos_]);
      advance();
    }
    for (size_t i = 0; i < closer.size() && pos_ < s_.size(); ++i) advance();
    emit(Token::Kind::string_lit, text);
  }

  void char_literal() {
    advance();  // opening quote
    std::string text;
    while (pos_ < s_.size() && s_[pos_] != '\'' && s_[pos_] != '\n') {
      if (s_[pos_] == '\\' && pos_ + 1 < s_.size()) {
        text.push_back(s_[pos_]);
        advance();
      }
      text.push_back(s_[pos_]);
      advance();
    }
    if (pos_ < s_.size() && s_[pos_] == '\'') advance();
    emit(Token::Kind::char_lit, text);
  }

  void identifier() {
    std::string text;
    while (pos_ < s_.size() && ident_char(s_[pos_])) {
      text.push_back(s_[pos_]);
      advance();
    }
    // Raw / encoding-prefixed string literal: the prefix is not a token.
    if (pos_ < s_.size() && s_[pos_] == '"' &&
        (text == "R" || text == "u8R" || text == "uR" || text == "UR" || text == "LR")) {
      raw_string_literal();
      return;
    }
    if (pos_ < s_.size() && s_[pos_] == '"' &&
        (text == "u8" || text == "u" || text == "U" || text == "L")) {
      string_literal();
      return;
    }
    emit(Token::Kind::ident, text);
  }

  void number() {
    std::string text;
    while (pos_ < s_.size() &&
           (ident_char(s_[pos_]) || s_[pos_] == '.' ||
            (s_[pos_] == '\'' && ident_char(peek(1))))) {
      text.push_back(s_[pos_]);
      advance();
    }
    emit(Token::Kind::number, text);
  }

  void punct() {
    // `::` and `->` matter to the checks (scope vs. label colon, member
    // chains); every other operator can stay single-character.
    if ((s_[pos_] == ':' && peek(1) == ':') || (s_[pos_] == '-' && peek(1) == '>')) {
      std::string text{s_[pos_], peek(1)};
      advance();
      advance();
      emit(Token::Kind::punct, text);
      return;
    }
    std::string text(1, s_[pos_]);
    advance();
    emit(Token::Kind::punct, text);
  }

  const std::string& s_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
  int start_line_ = 1;
  int start_col_ = 1;
  bool at_line_start_ = true;
  LexResult result_;
};

}  // namespace

LexResult lex(const std::string& content) { return Scanner(content).run(); }

}  // namespace mighty::lint
