#include "compile_commands.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace mighty::lint {

namespace {

/// Parses one JSON string starting at s[i] == '"'; returns the decoded value
/// and leaves i past the closing quote.  Only the escapes CMake emits are
/// decoded; unknown escapes keep the literal character.
std::string parse_json_string(const std::string& s, size_t& i) {
  std::string out;
  ++i;  // opening quote
  while (i < s.size() && s[i] != '"') {
    if (s[i] == '\\' && i + 1 < s.size()) {
      ++i;
      switch (s[i]) {
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u':
          // Paths with non-ASCII escapes are passed through undecoded; the
          // file simply will not match any walked path.
          out.push_back('?');
          i += 4 < s.size() - i ? 4 : 0;
          break;
        default: out.push_back(s[i]); break;
      }
      ++i;
    } else {
      out.push_back(s[i]);
      ++i;
    }
  }
  if (i < s.size()) ++i;  // closing quote
  return out;
}

}  // namespace

std::vector<std::string> compile_commands_files(const std::string& build_dir) {
  const std::string path = build_dir + "/compile_commands.json";
  std::ifstream is(path);
  if (!is) {
    throw std::runtime_error("cannot read " + path +
                             " (configure with CMAKE_EXPORT_COMPILE_COMMANDS ON)");
  }
  std::ostringstream buffer;
  buffer << is.rdbuf();
  const std::string text = buffer.str();

  // Walk string-by-string: a string immediately followed (modulo whitespace)
  // by ':' is a key; the value of a "file" key is recorded.
  std::vector<std::string> files;
  std::string pending_key;
  bool value_is_file = false;
  for (size_t i = 0; i < text.size();) {
    const char c = text[i];
    if (c == '"') {
      std::string s = parse_json_string(text, i);
      size_t j = i;
      while (j < text.size() && std::isspace(static_cast<unsigned char>(text[j]))) ++j;
      if (j < text.size() && text[j] == ':') {
        pending_key = s;
        value_is_file = pending_key == "file";
      } else {
        if (value_is_file) files.push_back(s);
        value_is_file = false;
      }
    } else {
      // Any structural character ends a pending key/value pairing.
      if (c == '{' || c == '}' || c == '[' || c == ']' || c == ',') value_is_file = false;
      ++i;
    }
  }
  return files;
}

}  // namespace mighty::lint
