// mighty-serve: the optimization-as-a-service daemon.
//
// Owns one hot flow::Session (NPN-4 database + persistent 5-input oracle
// cache + two-level thread pool) and serves it to any number of concurrent
// clients over a unix-domain socket speaking the length-prefixed protocol of
// docs/protocol.md.  Every client skips cold start: the database loads once,
// and every job's 5-input syntheses land in one shared cache that persists
// across daemon restarts.
//
//   $ mighty_serve --socket /run/mighty.sock --cache /var/cache/5cut.db
//                  --threads 8 --jobs 2 --warm
//
//   --socket <path>   unix socket to listen on (required)
//   --cache <path>    persistent 5-input oracle cache (optional)
//   --db <path>       NPN-4 database ($MIGHTY_DB_PATH / default otherwise)
//   --threads <n>     shard parallelism within a job (default 1)
//   --jobs <n>        concurrent jobs (default 1: strict submission order,
//                     session directives allowed in scripts)
//   --check <level>   off | fast | full between-pass invariant checking
//   --warm            materialize database + oracle + cache before listening
//
// Shutdown: SIGTERM/SIGINT or a client SHUTDOWN frame.  All three funnel
// into one path — finish running jobs, refuse new ones, persist the cache
// through the idempotent Session::persist(), close the socket — so a
// service manager's TERM and a client's SHUTDOWN are indistinguishable.

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <unistd.h>

#include "api/api.hpp"
#include "serve/server.hpp"

namespace {

// Self-pipe: the only thing a signal handler may safely do is write a byte;
// the main thread blocks in read() and runs the real shutdown afterwards.
int g_wake_pipe[2] = {-1, -1};

extern "C" void handle_signal(int) {
  const char byte = 1;
  // Best effort; if the pipe is somehow full a shutdown is already pending.
  [[maybe_unused]] const ssize_t n = write(g_wake_pipe[1], &byte, 1);
}

const char* flag_value(int argc, char** argv, const char* name) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return nullptr;
}

bool has_flag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mighty;

  const char* socket_path = flag_value(argc, argv, "--socket");
  if (socket_path == nullptr) {
    std::fprintf(stderr,
                 "usage: mighty_serve --socket <path> [--cache <path>] "
                 "[--db <path>] [--threads <n>] [--jobs <n>] "
                 "[--check off|fast|full] [--warm]\n");
    return 2;
  }

  api::LocalService::Params params;
  if (const char* cache = flag_value(argc, argv, "--cache")) {
    params.session.oracle_cache_path = cache;
  }
  if (const char* db = flag_value(argc, argv, "--db")) {
    params.session.database_path = db;
  }
  if (const char* threads = flag_value(argc, argv, "--threads")) {
    params.session.threads = static_cast<uint32_t>(std::strtoul(threads, nullptr, 10));
  }
  if (const char* jobs = flag_value(argc, argv, "--jobs")) {
    params.job_workers = static_cast<uint32_t>(std::strtoul(jobs, nullptr, 10));
  }

  if (pipe(g_wake_pipe) != 0) {
    std::perror("mighty_serve: pipe");
    return 1;
  }
  // A client that disconnects mid-reply must surface as a failed send on
  // that connection, not kill the daemon.
  std::signal(SIGPIPE, SIG_IGN);
  std::signal(SIGTERM, handle_signal);
  std::signal(SIGINT, handle_signal);

  int exit_code = 0;
  try {
    api::LocalService service(params);
    if (const char* level = flag_value(argc, argv, "--check")) {
      if (std::strcmp(level, "off") == 0) {
        service.session().set_check_level(flow::CheckLevel::off);
      } else if (std::strcmp(level, "fast") == 0) {
        service.session().set_check_level(flow::CheckLevel::fast);
      } else if (std::strcmp(level, "full") == 0) {
        service.session().set_check_level(flow::CheckLevel::full);
      } else {
        std::fprintf(stderr, "mighty_serve: unknown check level '%s'\n", level);
        return 2;
      }
    }
    if (has_flag(argc, argv, "--warm")) {
      // Pay the cold start now, before the first client connects.
      service.session().oracle();
      const auto cache = service.cache_stats();
      std::printf("mighty_serve: warm (%zu cached 5-input syntheses)\n",
                  cache.entries);
    }

    serve::ServerParams server_params;
    server_params.socket_path = socket_path;
    // A client SHUTDOWN lands on the same self-pipe as SIGTERM: one wake,
    // one wind-down path.
    server_params.on_shutdown_request = [] { handle_signal(0); };
    serve::Server server(service, server_params);
    std::printf("mighty_serve: listening on %s\n", socket_path);
    std::fflush(stdout);

    char byte = 0;
    while (read(g_wake_pipe[0], &byte, 1) < 0 && errno == EINTR) {
    }

    std::printf("mighty_serve: shutting down\n");
    // Order matters: shutting the service down first finishes running jobs
    // and wakes every connection blocked in result(); only then can the
    // server join its connection threads without deadlocking.
    service.shutdown();
    server.stop();
    std::printf("mighty_serve: cache persisted, bye\n");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mighty_serve: %s\n", e.what());
    exit_code = 1;
  }
  close(g_wake_pipe[0]);
  close(g_wake_pipe[1]);
  return exit_code;
}
