#!/usr/bin/env python3
"""Bench regression gate for the BENCH_*.json artifacts.

Compares a fresh machine-readable bench result (table3_functional_hashing /
table4_mapping with --json) against a checked-in baseline:

  * quality metrics (size, depth, luts, lut_depth, ...) FAIL the gate when
    they regress — any value strictly greater than the baseline's;
  * rate metrics (names ending in "_rate", e.g. the corpus bench's
    cache5_reuse_rate) are higher-is-better: they FAIL when they drop below
    the baseline (these are deterministic counter ratios, not wall time);
  * wall time ("seconds" metrics) only WARNS, because CI machines are noisy;
    the tolerance factor is configurable; when the result JSON carries a
    non-empty "sanitizer" stamp (ASan/TSan/UBSan build) wall metrics are not
    compared at all, just flagged once;
  * a benchmark or variant present in the baseline but missing from the
    result FAILS (silently dropping coverage must not pass);
  * improvements are listed so the baseline can be refreshed deliberately.

Usage:
  tools/check_bench.py --baseline bench/baselines/table3_small.json \
      BENCH_table3.json [--wall-tolerance 1.5]

Exit status: 0 clean (warnings allowed), 1 on any regression or schema error.

Typed for `mypy --strict` (the python-lint CI job): JSON payloads stay
`dict[str, Any]` — their shape is validated at the access sites, which is
exactly what the error messages report on.
"""

import argparse
import json
import sys
from typing import Any

JsonDict = dict[str, Any]
Report = dict[str, list[str]]

WALL_METRICS = {"seconds"}
# Counter-ratio metrics where higher is better (cache reuse, oracle hit
# rates).  Deterministic for a fixed corpus and script, so compared with only
# a float-formatting epsilon.
RATE_SUFFIX = "_rate"
RATE_EPSILON = 1e-6


def load(path: str) -> JsonDict:
    try:
        with open(path) as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        sys.exit(f"error: cannot read {path}: {error}")
    if not isinstance(doc, dict):
        sys.exit(f"error: {path}: top level is not a JSON object")
    return doc


def index_benchmarks(doc: JsonDict, path: str) -> dict[str, JsonDict]:
    benchmarks = doc.get("benchmarks")
    if not isinstance(benchmarks, list):
        sys.exit(f"error: {path} has no 'benchmarks' array")
    indexed: dict[str, JsonDict] = {}
    for position, bench in enumerate(benchmarks):
        if not isinstance(bench, dict) or "name" not in bench:
            sys.exit(f"error: {path}: benchmarks[{position}] has no 'name' "
                     f"(malformed entry: {bench!r:.80})")
        name = bench["name"]
        if not isinstance(name, str):
            sys.exit(f"error: {path}: benchmarks[{position}] 'name' is not a "
                     f"string: {name!r:.80}")
        indexed[name] = bench
    return indexed


def compare_metrics(context: str, baseline: JsonDict, current: JsonDict,
                    tolerance: float, report: Report,
                    sanitizer: str = "") -> None:
    """Compares one metric group; records regressions in `report`."""
    for metric, base_value in baseline.items():
        if metric not in current:
            # A baseline metric the bench JSON no longer emits is silent
            # coverage loss, exactly like a missing benchmark: hard failure,
            # with a message naming both sides.
            report["failures"].append(
                f"{context}: baseline names metric '{metric}' but the bench "
                f"result no longer emits it (refresh the baseline if this "
                f"was removed deliberately)")
            report["failed_metrics"].append(f"{context}:{metric}")
            continue
        value = current[metric]
        if not isinstance(base_value, (int, float)) or isinstance(base_value, bool) \
                or not isinstance(value, (int, float)) or isinstance(value, bool):
            report["failures"].append(
                f"{context}: metric '{metric}' is not numeric "
                f"(baseline {base_value!r}, result {value!r})")
            report["failed_metrics"].append(f"{context}:{metric}")
            continue
        if metric in WALL_METRICS:
            if sanitizer:
                # Instrumented builds (ASan/TSan/UBSan) run several times
                # slower; their wall numbers say nothing about the code, so
                # they are not even compared -- main() emits one summary
                # warning per run instead of one per metric.
                continue
            if base_value > 0 and value > base_value * tolerance:
                report["warnings"].append(
                    f"{context}: {metric} {value:.2f}s vs baseline "
                    f"{base_value:.2f}s (> x{tolerance:g}; wall time is warn-only)")
        elif metric.endswith(RATE_SUFFIX):
            if value < base_value - RATE_EPSILON:
                report["failures"].append(
                    f"{context}: {metric} regressed {base_value:g} -> {value:g} "
                    f"(higher is better)")
                report["failed_metrics"].append(f"{context}:{metric}")
            elif value > base_value + RATE_EPSILON:
                report["improvements"].append(
                    f"{context}: {metric} improved {base_value:g} -> {value:g}")
        elif value > base_value:
            report["failures"].append(
                f"{context}: {metric} regressed {base_value:g} -> {value:g}")
            report["failed_metrics"].append(f"{context}:{metric}")
        elif value < base_value:
            report["improvements"].append(
                f"{context}: {metric} improved {base_value:g} -> {value:g}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("result", help="fresh BENCH_*.json to check")
    parser.add_argument("--baseline", required=True,
                        help="checked-in baseline JSON to compare against")
    parser.add_argument("--wall-tolerance", type=float, default=1.5,
                        help="warn when wall time exceeds baseline x this factor")
    args = parser.parse_args()

    baseline_doc = load(args.baseline)
    result_doc = load(args.result)
    if baseline_doc.get("bench") != result_doc.get("bench"):
        sys.exit(f"error: bench mismatch: baseline is '{baseline_doc.get('bench')}', "
                 f"result is '{result_doc.get('bench')}'")
    if baseline_doc.get("mode") != result_doc.get("mode"):
        sys.exit(f"error: mode mismatch: baseline is '{baseline_doc.get('mode')}', "
                 f"result is '{result_doc.get('mode')}'")

    baseline = index_benchmarks(baseline_doc, args.baseline)
    result = index_benchmarks(result_doc, args.result)
    # "failed_metrics" mirrors "failures" with compact benchmark:metric keys,
    # so the final summary line can name every offender (a bare count sends
    # the reader scrolling back through the FAIL lines).
    report: Report = {"failures": [], "warnings": [], "improvements": [],
                      "failed_metrics": []}

    # Bench binaries stamp the sanitizer they were built under into the JSON
    # (empty for plain builds, absent for pre-stamp artifacts).  Wall metrics
    # from an instrumented run are meaningless against a plain baseline.
    sanitizer = str(result_doc.get("sanitizer", "") or "")
    if sanitizer:
        report["warnings"].append(
            f"result was produced by a '{sanitizer}'-instrumented build; "
            f"wall-time metrics are not compared (quality metrics still gate)")

    for name, base_bench in baseline.items():
        if name not in result:
            report["failures"].append(f"benchmark '{name}' missing from result")
            report["failed_metrics"].append(f"{name} (missing)")
            continue
        bench = result[name]
        compare_metrics(f"{name}/baseline", base_bench.get("baseline", {}),
                        bench.get("baseline", {}), args.wall_tolerance, report,
                        sanitizer)
        for variant, base_metrics in base_bench.get("variants", {}).items():
            current_metrics = bench.get("variants", {}).get(variant)
            if current_metrics is None:
                report["failures"].append(f"{name}: variant '{variant}' missing")
                report["failed_metrics"].append(f"{name}/{variant} (missing)")
                continue
            compare_metrics(f"{name}/{variant}", base_metrics, current_metrics,
                            args.wall_tolerance, report, sanitizer)
    for name in result:
        if name not in baseline:
            report["warnings"].append(
                f"benchmark '{name}' not in baseline (extend the baseline?)")

    bench_name = result_doc.get("bench", "?")
    for line in report["warnings"]:
        print(f"WARN  [{bench_name}] {line}")
    for line in report["improvements"]:
        print(f"BETTER[{bench_name}] {line}")
    for line in report["failures"]:
        print(f"FAIL  [{bench_name}] {line}")

    checked = sum(len(b.get("variants", {})) + 1 for b in baseline.values())
    if report["failures"]:
        print(f"{bench_name}: {len(report['failures'])} regression(s) across "
              f"{checked} checked metric groups — offending: "
              + ", ".join(report["failed_metrics"]))
        return 1
    print(f"{bench_name}: no quality regressions across {checked} metric groups"
          + (f"; {len(report['improvements'])} improvement(s) — consider "
             f"refreshing the baseline" if report["improvements"] else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
